//! Workspace-wide structure-of-arrays router state.
//!
//! Every router used to own its VC buffers, credit counters and
//! allocation scratch as nested `Vec`s; stepping the mesh chased one
//! heap allocation per port per router. [`NocWorkspace`] flattens all
//! of that into contiguous per-field lanes shared by the whole
//! network, indexed by the flat [`VcKey`] scheme
//! (`router * PORTS * vcs + port * vcs + vc`):
//!
//! - **Input-VC lanes** (`head`/`len`/`route`/`held`/`policy_held`)
//!   describe the buffer ring and allocation state of each input VC.
//! - **Flit lanes** (`f_packet`/`f_seq`/`f_flags`/`f_ready`) hold the
//!   buffered flits themselves, `depth` ring slots per lane, split by
//!   field so the hot sweeps touch only the bytes they need.
//! - **Output lanes** (`credits`/`owner`) reuse the *same* index
//!   space: output VC `(router, port, vc)` is credit-matched to the
//!   downstream input VC it feeds.
//!
//! Routers keep only their allocation masks and statistics; all data
//! that audit, telemetry and fault hooks want to observe lives here
//! and is read through the typed [`VcRef`]/[`PortRef`] handles with
//! explicit valid/ready semantics: a lane is *valid* when it holds a
//! front flit whose pipeline delay has elapsed, and an output VC is
//! *ready* when a downstream credit is available. Instrumentation and
//! the router hot path therefore agree on one source of truth instead
//! of poking router internals.

use crate::packet::Flit;
use crate::router::{OutRoute, PORTS};
use snoc_common::geom::Direction;
use snoc_common::ids::{PacketId, VcKey};
use snoc_common::Cycle;

/// `route` lane sentinel: no output allocated.
const NO_ROUTE: u16 = u16::MAX;
/// `owner` lane sentinel: output VC unowned.
const NO_OWNER: u16 = u16::MAX;
/// `held` lane sentinel: no bank-aware hold anchor.
const NO_HOLD: u64 = u64::MAX;
const FLAG_HEAD: u8 = 1;
const FLAG_TAIL: u8 = 1 << 1;

/// The structure-of-arrays store backing every router's VC, credit and
/// hold state. One instance serves the whole network — or, under the
/// sharded stepper, one contiguous partition of it: a workspace built
/// with [`NocWorkspace::with_base`] holds the lanes of routers
/// `base..base + routers` and keeps accepting *global* router indices
/// and [`VcKey`]s, so routers and instrumentation are oblivious to
/// which shard owns them. See the module docs for the lane layout.
#[derive(Debug, Clone)]
pub struct NocWorkspace {
    /// Global index of the first router served (0 when unsharded).
    base: usize,
    /// Lane-space offset of `base` (`base * PORTS * vcs`).
    lane_offset: usize,
    routers: usize,
    vcs: usize,
    depth: usize,
    /// Flit slots per router (`PORTS * vcs * depth`), the occupancy
    /// denominator.
    capacity: usize,
    /// Ring start offset of each input VC, `0..depth`.
    head: Box<[u8]>,
    /// Buffered flit count of each input VC, `0..=depth`.
    len: Box<[u8]>,
    /// Allocated output per input VC: `(out_port << 8) | out_vc`, or
    /// [`NO_ROUTE`].
    route: Box<[u16]>,
    /// Cycle the head packet was first held by the bank-aware policy,
    /// or [`NO_HOLD`]. The anchor survives a lapsed hold (it drives
    /// the `max_hold` force release and the held-packet statistics).
    held: Box<[u64]>,
    /// 1 while the most recent VA pass actively withheld allocation.
    policy_held: Box<[u8]>,
    /// Flit ring slots, `depth` per lane: packet id.
    f_packet: Box<[u16]>,
    /// Flit ring slots: sequence number.
    f_seq: Box<[u16]>,
    /// Flit ring slots: head/tail flags.
    f_flags: Box<[u8]>,
    /// Flit ring slots: cycle the flit clears the router pipeline.
    f_ready: Box<[u64]>,
    /// Downstream credits of each output VC, `0..=depth`.
    credits: Box<[u8]>,
    /// Input VC bound to each output VC: `(in_port << 8) | in_vc`, or
    /// [`NO_OWNER`]; bound from head-flit VA until the tail departs.
    owner: Box<[u16]>,
    /// Total buffered flits per router (RCA occupancy, idle skip).
    buffered: Box<[u32]>,
}

impl NocWorkspace {
    /// Creates the store for `routers` routers with `vcs` VCs of
    /// `depth` flits on each of the [`PORTS`] ports.
    pub fn new(routers: usize, vcs: usize, depth: usize) -> Self {
        Self::with_base(0, routers, vcs, depth)
    }

    /// Creates a store serving the contiguous partition of `routers`
    /// routers starting at global index `base`. All accessors keep
    /// taking global router indices; the offset is internal.
    pub fn with_base(base: usize, routers: usize, vcs: usize, depth: usize) -> Self {
        assert!(
            PORTS * vcs <= 64,
            "per-router (port, vc) space must fit the allocation bitmasks"
        );
        assert!(vcs <= u8::MAX as usize && depth <= u8::MAX as usize);
        let lanes = routers * PORTS * vcs;
        Self {
            base,
            lane_offset: base * PORTS * vcs,
            routers,
            vcs,
            depth,
            capacity: PORTS * vcs * depth,
            head: vec![0; lanes].into_boxed_slice(),
            len: vec![0; lanes].into_boxed_slice(),
            route: vec![NO_ROUTE; lanes].into_boxed_slice(),
            held: vec![NO_HOLD; lanes].into_boxed_slice(),
            policy_held: vec![0; lanes].into_boxed_slice(),
            f_packet: vec![0; lanes * depth].into_boxed_slice(),
            f_seq: vec![0; lanes * depth].into_boxed_slice(),
            f_flags: vec![0; lanes * depth].into_boxed_slice(),
            f_ready: vec![0; lanes * depth].into_boxed_slice(),
            credits: vec![depth as u8; lanes].into_boxed_slice(),
            owner: vec![NO_OWNER; lanes].into_boxed_slice(),
            buffered: vec![0; routers].into_boxed_slice(),
        }
    }

    /// Returns every lane to its just-constructed state without
    /// touching the allocations: empty rings, no routes or owners,
    /// full credits, zero occupancy. The flit slots themselves are
    /// left as-is — `len == 0` makes them unreadable, and every write
    /// path stores before the matching read — so a reset store is
    /// observably identical to a fresh [`NocWorkspace::with_base`]
    /// with the same geometry.
    pub fn reset(&mut self) {
        self.head.fill(0);
        self.len.fill(0);
        self.route.fill(NO_ROUTE);
        self.held.fill(NO_HOLD);
        self.policy_held.fill(0);
        self.credits.fill(self.depth as u8);
        self.owner.fill(NO_OWNER);
        self.buffered.fill(0);
    }

    /// Number of routers served.
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// Global index of the first router served.
    pub fn base_router(&self) -> usize {
        self.base
    }

    /// `true` when this store holds `router`'s lanes.
    #[inline]
    pub fn owns(&self, router: usize) -> bool {
        router.wrapping_sub(self.base) < self.routers
    }

    /// Total buffered flits across every served router (the work
    /// estimate gating thread spawns in the sharded stepper).
    pub fn total_buffered(&self) -> usize {
        self.buffered.iter().map(|&b| b as usize).sum()
    }

    /// VCs per port.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Buffer depth per VC in flits.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// First lane of `router`'s flat `(port, vc)` block. `router` is a
    /// global index; the returned lane is local to this store.
    #[inline]
    pub(crate) fn router_base(&self, router: usize) -> usize {
        debug_assert!(self.owns(router), "router {router} outside this shard");
        (router - self.base) * PORTS * self.vcs
    }

    /// The (store-local) lane index of global `(router, port, vc)`.
    #[inline]
    pub fn lane(&self, router: usize, port: usize, vc: usize) -> usize {
        debug_assert!(self.owns(router), "router {router} outside this shard");
        VcKey::compose(router - self.base, port, vc, PORTS, self.vcs).lane()
    }

    // ---- input VC ring ------------------------------------------------

    #[inline]
    fn ring_slot(&self, lane: usize, k: usize) -> usize {
        debug_assert!(k < self.len[lane] as usize);
        let mut p = self.head[lane] as usize + k;
        if p >= self.depth {
            p -= self.depth;
        }
        lane * self.depth + p
    }

    #[inline]
    fn read_flit(&self, slot: usize) -> Flit {
        let flags = self.f_flags[slot];
        Flit {
            packet: PacketId::new(self.f_packet[slot]),
            seq: self.f_seq[slot],
            head: flags & FLAG_HEAD != 0,
            tail: flags & FLAG_TAIL != 0,
            ready_at: self.f_ready[slot],
        }
    }

    /// Buffered flit count of a lane.
    #[inline]
    pub(crate) fn vc_len(&self, lane: usize) -> usize {
        self.len[lane] as usize
    }

    /// The `k`-th buffered flit of a lane (0 = front).
    #[inline]
    pub(crate) fn flit_at(&self, lane: usize, k: usize) -> Flit {
        self.read_flit(self.ring_slot(lane, k))
    }

    /// The front flit, if any.
    #[inline]
    pub(crate) fn front(&self, lane: usize) -> Option<Flit> {
        (self.len[lane] > 0).then(|| self.flit_at(lane, 0))
    }

    /// Packet id of the front flit (lane must be non-empty).
    #[inline]
    pub(crate) fn front_packet(&self, lane: usize) -> PacketId {
        PacketId::new(self.f_packet[self.ring_slot(lane, 0)])
    }

    /// Pipeline-ready cycle of the front flit (lane must be non-empty).
    #[inline]
    pub(crate) fn front_ready_at(&self, lane: usize) -> Cycle {
        self.f_ready[self.ring_slot(lane, 0)]
    }

    /// `true` when the front flit is a header (lane must be non-empty).
    #[inline]
    pub(crate) fn front_is_head(&self, lane: usize) -> bool {
        self.f_flags[self.ring_slot(lane, 0)] & FLAG_HEAD != 0
    }

    /// Appends a flit to a lane's ring; returns `true` when the lane
    /// was empty (the caller arms VA on empty-lane head arrivals).
    #[inline]
    pub(crate) fn push_back(&mut self, router: usize, lane: usize, flit: Flit) -> bool {
        let len = self.len[lane] as usize;
        debug_assert!(len < self.depth, "input VC overflow (credit bug)");
        let mut p = self.head[lane] as usize + len;
        if p >= self.depth {
            p -= self.depth;
        }
        let slot = lane * self.depth + p;
        self.f_packet[slot] = flit.packet.raw();
        self.f_seq[slot] = flit.seq;
        self.f_flags[slot] = (flit.head as u8 * FLAG_HEAD) | (flit.tail as u8 * FLAG_TAIL);
        self.f_ready[slot] = flit.ready_at;
        self.len[lane] = (len + 1) as u8;
        self.buffered[router - self.base] += 1;
        len == 0
    }

    /// Pops the front flit of a non-empty lane.
    #[inline]
    pub(crate) fn pop_front(&mut self, router: usize, lane: usize) -> Flit {
        let len = self.len[lane];
        debug_assert!(len > 0, "pop from empty input VC");
        let head = self.head[lane] as usize;
        let flit = self.read_flit(lane * self.depth + head);
        let mut h = head + 1;
        if h >= self.depth {
            h -= self.depth;
        }
        self.head[lane] = h as u8;
        self.len[lane] = len - 1;
        self.buffered[router - self.base] -= 1;
        flit
    }

    // ---- allocation state ---------------------------------------------

    /// The allocated `(out_port, out_vc)` of a lane, if any.
    #[inline]
    pub(crate) fn route_parts(&self, lane: usize) -> Option<(usize, usize)> {
        let raw = self.route[lane];
        (raw != NO_ROUTE).then_some(((raw >> 8) as usize, (raw & 0xFF) as usize))
    }

    #[inline]
    pub(crate) fn set_route(&mut self, lane: usize, out_port: usize, out_vc: usize) {
        self.route[lane] = (out_port as u16) << 8 | out_vc as u16;
    }

    #[inline]
    pub(crate) fn clear_route(&mut self, lane: usize) {
        self.route[lane] = NO_ROUTE;
    }

    /// The hold anchor of a lane (survives lapsed holds), if set.
    #[inline]
    pub(crate) fn held_anchor(&self, lane: usize) -> Option<Cycle> {
        let h = self.held[lane];
        (h != NO_HOLD).then_some(h)
    }

    #[inline]
    pub(crate) fn set_held(&mut self, lane: usize, now: Cycle) {
        self.held[lane] = now;
    }

    /// Clears and returns the hold anchor.
    #[inline]
    pub(crate) fn take_held(&mut self, lane: usize) -> Option<Cycle> {
        let h = std::mem::replace(&mut self.held[lane], NO_HOLD);
        (h != NO_HOLD).then_some(h)
    }

    #[inline]
    pub(crate) fn is_policy_held(&self, lane: usize) -> bool {
        self.policy_held[lane] != 0
    }

    #[inline]
    pub(crate) fn set_policy_held(&mut self, lane: usize, held: bool) {
        self.policy_held[lane] = held as u8;
    }

    // ---- output VC flow control ---------------------------------------

    /// Remaining downstream credits of an output lane.
    #[inline]
    pub(crate) fn credit(&self, lane: usize) -> u8 {
        self.credits[lane]
    }

    /// Consumes one credit of an output lane.
    #[inline]
    pub(crate) fn spend_credit(&mut self, lane: usize) {
        debug_assert!(self.credits[lane] > 0, "credit underflow");
        self.credits[lane] -= 1;
    }

    /// Returns `n` credits to an output lane.
    #[inline]
    pub(crate) fn refund_credits(&mut self, lane: usize, n: u8) {
        self.credits[lane] += n;
        debug_assert!(self.credits[lane] as usize <= self.depth, "credit overflow");
    }

    #[cfg(test)]
    pub(crate) fn drain_credits_lane(&mut self, lane: usize) -> u8 {
        std::mem::take(&mut self.credits[lane])
    }

    /// The `(in_port, in_vc)` bound to an output lane, if owned.
    #[inline]
    pub(crate) fn owner_parts(&self, lane: usize) -> Option<(u8, u8)> {
        let raw = self.owner[lane];
        (raw != NO_OWNER).then_some(((raw >> 8) as u8, raw as u8))
    }

    #[inline]
    pub(crate) fn owner_is_none(&self, lane: usize) -> bool {
        self.owner[lane] == NO_OWNER
    }

    #[inline]
    pub(crate) fn set_owner(&mut self, lane: usize, in_port: u8, in_vc: u8) {
        self.owner[lane] = (in_port as u16) << 8 | in_vc as u16;
    }

    #[inline]
    pub(crate) fn clear_owner(&mut self, lane: usize) {
        self.owner[lane] = NO_OWNER;
    }

    // ---- per-router aggregates ----------------------------------------

    /// Total buffered flits in a router (all ports, all VCs).
    #[inline]
    pub fn buffered(&self, router: usize) -> usize {
        self.buffered[router - self.base] as usize
    }

    /// Buffer occupancy of a router as a 0..=255 fraction of capacity.
    #[inline]
    pub fn occupancy_byte(&self, router: usize) -> u8 {
        (self.buffered[router - self.base] as usize * 255 / self.capacity) as u8
    }

    // ---- typed handles ------------------------------------------------

    /// A read handle on one input VC.
    pub fn vc(&self, router: usize, port: usize, vc: usize) -> VcRef<'_> {
        VcRef {
            ws: self,
            lane: self.lane(router, port, vc),
        }
    }

    /// A read handle on the input VC named by a flat (global) key.
    pub fn vc_by_key(&self, key: VcKey) -> VcRef<'_> {
        let lane = key.lane() - self.lane_offset;
        debug_assert!(lane < self.route.len());
        VcRef { ws: self, lane }
    }

    /// A read handle on one output port's flow-control state.
    pub fn port(&self, router: usize, port: usize) -> PortRef<'_> {
        PortRef {
            ws: self,
            base: self.lane(router, port, 0),
            vcs: self.vcs,
        }
    }
}

/// A typed read handle on one input virtual channel's workspace lanes.
///
/// The *valid* side of the port-interface contract: a VC presents a
/// flit ([`Self::front`]) and [`Self::valid`] says whether that flit
/// has cleared the router pipeline and may be consumed this cycle.
#[derive(Clone, Copy)]
pub struct VcRef<'a> {
    ws: &'a NocWorkspace,
    lane: usize,
}

impl VcRef<'_> {
    /// The flat (global) key of this VC.
    pub fn key(&self) -> VcKey {
        VcKey::from_lane(self.lane + self.ws.lane_offset)
    }

    /// Buffered flit count.
    pub fn len(&self) -> usize {
        self.ws.vc_len(self.lane)
    }

    /// `true` when no flits are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The flit at the head of the buffer.
    pub fn front(&self) -> Option<Flit> {
        self.ws.front(self.lane)
    }

    /// The `k`-th buffered flit (0 = front). Panics past [`Self::len`]
    /// in debug builds.
    pub fn flit(&self, k: usize) -> Flit {
        self.ws.flit_at(self.lane, k)
    }

    /// `true` when the front flit exists and has cleared the pipeline:
    /// the VC presents consumable data this cycle.
    pub fn valid(&self, now: Cycle) -> bool {
        self.ws.vc_len(self.lane) > 0 && self.ws.front_ready_at(self.lane) <= now
    }

    /// The allocated output, if any.
    pub fn route(&self) -> Option<OutRoute> {
        self.ws.route_parts(self.lane).map(|(dp, vc)| OutRoute {
            dir: Direction::ALL[dp],
            vc,
        })
    }

    /// `true` while the head packet is being held by bank-aware
    /// arbitration.
    pub fn is_held(&self) -> bool {
        self.ws.held_anchor(self.lane).is_some() && self.ws.route_parts(self.lane).is_none()
    }

    /// The cycle the head packet was first held, while the bank-aware
    /// policy is actively withholding VA (audit instrumentation).
    /// Lapsed holds — the policy released the packet but allocation is
    /// backpressured — report `None`.
    pub fn held_since(&self) -> Option<Cycle> {
        if self.ws.is_policy_held(self.lane) && self.ws.route_parts(self.lane).is_none() {
            self.ws.held_anchor(self.lane)
        } else {
            None
        }
    }
}

/// A typed read handle on one output port's flow-control lanes.
///
/// The *ready* side of the port-interface contract: output VC `v` is
/// [`Self::ready`] when a downstream credit is available, and free for
/// allocation when additionally unowned.
#[derive(Clone, Copy)]
pub struct PortRef<'a> {
    ws: &'a NocWorkspace,
    base: usize,
    vcs: usize,
}

impl PortRef<'_> {
    /// Remaining downstream credits of output VC `vc`.
    pub fn credits(&self, vc: usize) -> u8 {
        debug_assert!(vc < self.vcs);
        self.ws.credit(self.base + vc)
    }

    /// `true` when output VC `vc` can accept a flit this cycle.
    pub fn ready(&self, vc: usize) -> bool {
        self.credits(vc) > 0
    }

    /// The `(in_port, in_vc)` bound to output VC `vc`, if owned.
    pub fn owner(&self, vc: usize) -> Option<(u8, u8)> {
        debug_assert!(vc < self.vcs);
        self.ws.owner_parts(self.base + vc)
    }

    /// `true` if some VC in `range` is unowned with credits available
    /// — i.e. VC allocation through this port could succeed right now
    /// for a packet of that class.
    pub fn has_free_credited_vc(&self, range: std::ops::Range<usize>) -> bool {
        range
            .into_iter()
            .any(|v| self.ws.owner_is_none(self.base + v) && self.ws.credit(self.base + v) > 0)
    }
}

/// A read view over every workspace shard of a network, dispatching
/// global router indices to the owning shard.
///
/// The sharded stepper physically splits the lane store into one
/// [`NocWorkspace`] per partition so partitions can step under
/// disjoint `&mut` borrows; instrumentation that roams the whole mesh
/// — the invariant auditor's link-conservation check, telemetry's
/// end-of-cycle sweep, the RCA occupancy probe — reads through this
/// view instead and stays oblivious to the partitioning. With one
/// shard (the serial path) the dispatch is a single bounds check.
#[derive(Clone, Copy)]
pub struct WsView<'a> {
    shards: &'a [NocWorkspace],
}

impl<'a> WsView<'a> {
    /// Wraps the partition-ordered shard list.
    pub fn new(shards: &'a [NocWorkspace]) -> Self {
        debug_assert!(!shards.is_empty());
        Self { shards }
    }

    /// The shard owning `router`. Shards are few (one per partition)
    /// and contiguous, so a linear walk beats any index structure.
    #[inline]
    fn shard_for(&self, router: usize) -> &'a NocWorkspace {
        for ws in self.shards {
            if ws.owns(router) {
                return ws;
            }
        }
        panic!("router {router} outside every shard");
    }

    /// Total routers served across all shards.
    pub fn routers(&self) -> usize {
        self.shards.iter().map(NocWorkspace::routers).sum()
    }

    /// A read handle on one input VC, by global router index.
    pub fn vc(&self, router: usize, port: usize, vc: usize) -> VcRef<'a> {
        self.shard_for(router).vc(router, port, vc)
    }

    /// A read handle on one output port, by global router index.
    pub fn port(&self, router: usize, port: usize) -> PortRef<'a> {
        self.shard_for(router).port(router, port)
    }

    /// Total buffered flits in a router (all ports, all VCs).
    pub fn buffered(&self, router: usize) -> usize {
        self.shard_for(router).buffered(router)
    }

    /// Buffer occupancy of a router as a 0..=255 fraction of capacity.
    pub fn occupancy_byte(&self, router: usize) -> u8 {
        self.shard_for(router).occupancy_byte(router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(pid: u16, seq: u16, head: bool, tail: bool, ready_at: Cycle) -> Flit {
        Flit {
            packet: PacketId::new(pid),
            seq,
            head,
            tail,
            ready_at,
        }
    }

    #[test]
    fn vc_key_round_trips_through_the_lane_space() {
        let ws = NocWorkspace::new(128, 6, 5);
        let mut lanes = std::collections::HashSet::new();
        for router in [0usize, 7, 127] {
            for port in 0..PORTS {
                for vc in 0..6 {
                    let key = VcKey::compose(router, port, vc, PORTS, 6);
                    assert_eq!(key.lane(), ws.lane(router, port, vc));
                    assert_eq!(key.decompose(PORTS, 6), (router, port, vc));
                    assert_eq!(ws.vc_by_key(key).key(), key);
                    assert!(lanes.insert(key.lane()), "lanes are unique");
                }
            }
        }
    }

    #[test]
    fn ring_wraps_past_the_buffer_depth() {
        let mut ws = NocWorkspace::new(1, 6, 5);
        let lane = ws.lane(0, 2, 3);
        // Fill, half-drain, refill: the ring head walks past `depth`.
        for round in 0u16..4 {
            for i in 0..3 {
                ws.push_back(0, lane, flit(round * 8 + i, i, false, false, u64::from(i)));
            }
            for i in 0..3 {
                let f = ws.pop_front(0, lane);
                assert_eq!(f.packet, PacketId::new(round * 8 + i));
                assert_eq!(f.seq, i);
            }
        }
        assert_eq!(ws.vc_len(lane), 0);
        assert_eq!(ws.buffered(0), 0);
    }

    #[test]
    fn push_reports_empty_and_flags_round_trip() {
        let mut ws = NocWorkspace::new(1, 6, 5);
        let lane = ws.lane(0, 0, 0);
        assert!(ws.push_back(0, lane, flit(7, 0, true, false, 12)));
        assert!(!ws.push_back(0, lane, flit(7, 1, false, true, 13)));
        let vc = ws.vc(0, 0, 0);
        assert_eq!(vc.len(), 2);
        let front = vc.front().unwrap();
        assert!(front.head && !front.tail);
        assert_eq!(front.ready_at, 12);
        assert!(!vc.valid(11), "pipeline delay gates validity");
        assert!(vc.valid(12));
        let second = vc.flit(1);
        assert!(!second.head && second.tail);
    }

    #[test]
    fn route_hold_and_owner_sentinels() {
        let mut ws = NocWorkspace::new(2, 6, 5);
        let lane = ws.lane(1, 3, 2);
        assert!(ws.route_parts(lane).is_none());
        ws.set_route(lane, 4, 5);
        assert_eq!(ws.route_parts(lane), Some((4, 5)));
        assert_eq!(
            ws.vc(1, 3, 2).route(),
            Some(OutRoute {
                dir: Direction::ALL[4],
                vc: 5
            })
        );
        ws.clear_route(lane);
        assert!(ws.vc(1, 3, 2).route().is_none());

        assert!(ws.held_anchor(lane).is_none());
        ws.set_held(lane, 99);
        assert!(ws.vc(1, 3, 2).is_held());
        assert_eq!(ws.take_held(lane), Some(99));
        assert_eq!(ws.take_held(lane), None);

        let olane = ws.lane(1, 0, 1);
        assert!(ws.owner_is_none(olane));
        ws.set_owner(olane, 6, 2);
        assert_eq!(ws.port(1, 0).owner(1), Some((6, 2)));
        ws.clear_owner(olane);
        assert!(ws.port(1, 0).owner(1).is_none());
    }

    #[test]
    fn held_since_requires_an_active_policy_hold() {
        let mut ws = NocWorkspace::new(1, 6, 5);
        let lane = ws.lane(0, 0, 0);
        ws.set_held(lane, 40);
        assert_eq!(ws.vc(0, 0, 0).held_since(), None, "anchor alone lapses");
        ws.set_policy_held(lane, true);
        assert_eq!(ws.vc(0, 0, 0).held_since(), Some(40));
        ws.set_route(lane, 0, 0);
        assert_eq!(ws.vc(0, 0, 0).held_since(), None, "allocated = not held");
    }

    #[test]
    fn credits_start_full_and_move_both_ways() {
        let mut ws = NocWorkspace::new(1, 6, 5);
        let port = 4;
        assert!(ws.port(0, port).ready(0));
        assert_eq!(ws.port(0, port).credits(0), 5);
        let lane = ws.lane(0, port, 0);
        for left in (0..5u8).rev() {
            ws.spend_credit(lane);
            assert_eq!(ws.port(0, port).credits(0), left);
        }
        assert!(!ws.port(0, port).ready(0));
        assert!(!ws.port(0, port).has_free_credited_vc(0..1));
        assert!(ws.port(0, port).has_free_credited_vc(0..6));
        ws.refund_credits(lane, 3);
        assert_eq!(ws.port(0, port).credits(0), 3);
        ws.set_owner(lane, 0, 0);
        assert!(
            !ws.port(0, port).has_free_credited_vc(0..1),
            "owned VCs are not free"
        );
    }

    #[test]
    fn sharded_stores_keep_global_indexing() {
        // The same traffic through an unsharded store and a two-shard
        // split: global indices, keys, counters and the WsView
        // dispatch must all agree.
        let mut whole = NocWorkspace::new(128, 6, 5);
        let mut shards = vec![
            NocWorkspace::with_base(0, 64, 6, 5),
            NocWorkspace::with_base(64, 64, 6, 5),
        ];
        assert!(shards[1].owns(64) && shards[1].owns(127));
        assert!(!shards[1].owns(63) && !shards[0].owns(64));
        let routers = [0usize, 63, 64, 70, 127];
        for &router in &routers {
            let f = flit(7, 0, true, false, 3);
            let lane = whole.lane(router, 2, 1);
            whole.push_back(router, lane, f);
            let s = &mut shards[router / 64];
            let lane = s.lane(router, 2, 1);
            s.push_back(router, lane, f);
            let key = VcKey::compose(router, 2, 1, PORTS, 6);
            assert_eq!(s.vc(router, 2, 1).key(), key, "keys stay global");
            assert_eq!(whole.vc(router, 2, 1).key(), key);
            assert_eq!(s.vc_by_key(key).len(), 1, "global keys dispatch");
        }
        assert_eq!(shards[0].total_buffered(), 2);
        assert_eq!(shards[1].total_buffered(), 3);
        let view = WsView::new(&shards);
        assert_eq!(view.routers(), 128);
        for &router in &routers {
            assert_eq!(view.buffered(router), whole.buffered(router));
            assert_eq!(view.occupancy_byte(router), whole.occupancy_byte(router));
            let f = view.vc(router, 2, 1).front().expect("flit visible");
            assert_eq!((f.packet, f.ready_at), (PacketId::new(7), 3));
            assert_eq!(view.port(router, 2).credits(1), 5);
        }
    }

    #[test]
    fn occupancy_tracks_per_router_buffering() {
        let mut ws = NocWorkspace::new(2, 6, 5);
        assert_eq!(ws.occupancy_byte(0), 0);
        for i in 0..5 {
            ws.push_back(0, ws.lane(0, 0, 0), flit(0, i, i == 0, i == 4, 0));
        }
        assert_eq!(ws.buffered(0), 5);
        assert_eq!(ws.buffered(1), 0, "routers are independent");
        // 5 of 7*6*5 = 210 slots.
        assert_eq!(ws.occupancy_byte(0) as usize, 5 * 255 / 210);
    }
}
