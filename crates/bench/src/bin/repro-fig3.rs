//! Regenerates the paper's Figure 3 (post-write gap distributions).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("fig3", &snoc_core::experiments::fig3::run(scale));
}
