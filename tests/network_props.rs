//! Randomized property tests of the 3D NoC: conservation (every
//! injected packet is delivered exactly once), minimality of
//! uncontended latency, and robustness across the
//! region/placement/scheme design space. Cases are drawn from the
//! deterministic [`SimRng`] so every run replays the same inputs.

use sttram_noc_repro::common::config::{
    ArbitrationPolicy, Estimator, RequestPathMode, SystemConfig, TsbPlacement,
};
use sttram_noc_repro::common::geom::{Coord, Layer, Mesh};
use sttram_noc_repro::common::rng::SimRng;
use sttram_noc_repro::noc::{NetworkParams, Packet, PacketKind};

fn params(
    mode: RequestPathMode,
    regions: usize,
    placement: TsbPlacement,
    policy: ArbitrationPolicy,
    hops: u32,
) -> NetworkParams {
    let cfg = SystemConfig {
        path_mode: mode,
        regions,
        tsb_placement: placement,
        arbitration: policy,
        parent_hops: hops,
        ..SystemConfig::default()
    };
    NetworkParams::from_config(&cfg)
}

fn kind_of(i: usize) -> PacketKind {
    match i % 4 {
        0 => PacketKind::BankRead,
        1 => PacketKind::BankWrite,
        2 => PacketKind::Writeback,
        _ => PacketKind::BankRead,
    }
}

fn policy_of(i: usize) -> ArbitrationPolicy {
    match i % 4 {
        0 => ArbitrationPolicy::RoundRobin,
        1 => ArbitrationPolicy::BankAware {
            estimator: Estimator::Simple,
        },
        2 => ArbitrationPolicy::BankAware {
            estimator: Estimator::Rca,
        },
        _ => ArbitrationPolicy::BankAware {
            estimator: Estimator::WindowBased,
        },
    }
}

/// No packet is ever lost or duplicated, whatever the topology
/// parameters and traffic pattern.
#[test]
fn conservation_across_design_space() {
    use sttram_noc_repro::noc::Network;
    let mut rng = SimRng::for_stream(0xA11CE, 1);
    for case in 0..12usize {
        let regions = [4usize, 8, 16][rng.below(3)];
        let placement = [TsbPlacement::Corner, TsbPlacement::Staggered][rng.below(2)];
        let policy = policy_of(rng.below(4));
        let hops = 1 + rng.below(3) as u32;
        let n = 1 + rng.below(59);
        let mut net = Network::new(params(
            RequestPathMode::RegionTsbs,
            regions,
            placement,
            policy,
            hops,
        ));
        let mesh = net.mesh();
        for i in 0..n {
            let src = mesh.coord((rng.below(64) as u16).into(), Layer::Core);
            let dst = mesh.coord((rng.below(64) as u16).into(), Layer::Cache);
            net.inject(Packet::new(kind_of(i), src, dst, i as u64, i as u64));
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6_000 {
            net.step();
            for node in 0..64u16 {
                let at = mesh.coord(node.into(), Layer::Cache);
                for p in net.drain_delivered(at) {
                    assert_eq!(
                        mesh.node(p.dst),
                        node.into(),
                        "case {case}: delivered at its destination"
                    );
                    assert!(seen.insert(p.token), "case {case}: duplicate {}", p.token);
                }
            }
            if seen.len() == n {
                break;
            }
        }
        assert_eq!(seen.len(), n, "case {case}: all packets delivered");
        assert_eq!(net.in_flight(), 0, "case {case}");
    }
}

/// A single uncontended packet is delivered no faster than the
/// pipeline allows and within a small constant of it.
#[test]
fn uncontended_latency_is_near_minimal() {
    use sttram_noc_repro::noc::Network;
    let mut rng = SimRng::for_stream(0xA11CE, 2);
    for _ in 0..24 {
        let src_n = rng.below(64) as u16;
        let dst_n = rng.below(64) as u16;
        let mut net = Network::new(params(
            RequestPathMode::AllTsvs,
            4,
            TsbPlacement::Corner,
            ArbitrationPolicy::RoundRobin,
            2,
        ));
        let mesh = net.mesh();
        let s = mesh.coord(src_n.into(), Layer::Core);
        let d = mesh.coord(dst_n.into(), Layer::Cache);
        net.inject(Packet::new(PacketKind::BankRead, s, d, 0, 0));
        let mut got = None;
        for _ in 0..300 {
            net.step();
            if let Some(p) = net.drain_delivered(d).pop() {
                got = Some(p);
                break;
            }
        }
        let p = got.expect("delivered");
        let hops = s.manhattan(d) as u64 + 1; // +1 for the vertical hop
        let min = hops * 3; // 2-stage router + 1-cycle link per hop
        let lat = p.net_latency();
        assert!(lat >= min, "{lat} >= {min}");
        assert!(lat <= min + 16, "{lat} <= {min} + slack");
    }
}

/// Z-X-Y routes and region-TSB routes both reach the same destination
/// set (the restriction changes paths, not reachability).
#[test]
fn both_path_modes_deliver() {
    use sttram_noc_repro::noc::Network;
    let mut rng = SimRng::for_stream(0xA11CE, 3);
    for _ in 0..16 {
        let core = rng.below(64) as u16;
        let bank = rng.below(64) as u16;
        for mode in [RequestPathMode::AllTsvs, RequestPathMode::RegionTsbs] {
            let mut net = Network::new(params(
                mode,
                4,
                TsbPlacement::Corner,
                ArbitrationPolicy::RoundRobin,
                2,
            ));
            let mesh = net.mesh();
            let s = mesh.coord(core.into(), Layer::Core);
            let d = mesh.coord(bank.into(), Layer::Cache);
            net.inject(Packet::new(PacketKind::Writeback, s, d, 1, 1));
            let mut delivered = false;
            for _ in 0..500 {
                net.step();
                if !net.drain_delivered(d).is_empty() {
                    delivered = true;
                    break;
                }
            }
            assert!(delivered, "{mode:?} delivers {core}->{bank}");
        }
    }
}

/// The minimal-route property for the deterministic routing function,
/// checked exhaustively (64 x 64 pairs, both modes — cheap, no
/// simulation).
#[test]
fn routing_trace_is_bounded_for_all_pairs() {
    use sttram_noc_repro::noc::regions::RegionMap;
    use sttram_noc_repro::noc::routing::RoutingTable;
    let mesh = Mesh::new(8, 8);
    for mode in [RequestPathMode::AllTsvs, RequestPathMode::RegionTsbs] {
        let table = RoutingTable::new(mesh, mode, RegionMap::new(mesh, 4, TsbPlacement::Corner));
        for core in 0..64u16 {
            for bank in 0..64u16 {
                let src = mesh.coord(core.into(), Layer::Core);
                let dst = mesh.coord(bank.into(), Layer::Cache);
                let p = Packet::new(PacketKind::BankRead, src, dst, 0, 0);
                let route = table.trace(&p);
                let minimal = src.manhattan(dst) as usize + 1;
                assert!(route.len() >= minimal);
                // The TSB detour is bounded by one mesh traversal.
                assert!(route.len() <= minimal + 28, "{core}->{bank} {mode:?}");
                assert_eq!(*route.last().unwrap(), dst);
            }
        }
    }
}

/// Responses always ascend at the bank's own column in both modes.
#[test]
fn responses_always_use_local_tsvs() {
    use sttram_noc_repro::noc::regions::RegionMap;
    use sttram_noc_repro::noc::routing::RoutingTable;
    let mesh = Mesh::new(8, 8);
    let table = RoutingTable::new(
        mesh,
        RequestPathMode::RegionTsbs,
        RegionMap::new(mesh, 4, TsbPlacement::Corner),
    );
    for bank in 0..64u16 {
        for core in 0..64u16 {
            let src = mesh.coord(bank.into(), Layer::Cache);
            let dst = mesh.coord(core.into(), Layer::Core);
            let p = Packet::new(PacketKind::DataReply, src, dst, 0, 0);
            let route = table.trace(&p);
            assert_eq!(
                route[0],
                Coord {
                    layer: Layer::Core,
                    ..src
                },
                "{bank}->{core}"
            );
        }
    }
}
