//! Telemetry deep-dive of one Quick-scale fig6 cell.
//!
//! Runs the paper's headline configuration (`SttRam4TsbWb`, the `sap`
//! server workload) with `SNOC_TELEMETRY` forced on and writes, under
//! `<SNOC_RESULTS_DIR|results>/telemetry/`:
//!
//! * `fig6_util_heatmap.{txt,csv}` — mean buffer utilization per
//!   router, one row per (layer, y), one column per x;
//! * `fig6_hold_heatmap.{txt,csv}` — mean bank-aware hold delay per
//!   router, same shape;
//! * `fig6_latency_hist.{txt,csv}` — log2-bucketed end-to-end latency
//!   per traffic class and per hop count;
//! * `fig6_timeseries.{txt,csv}` — the per-epoch time series;
//! * `fig6_trace.jsonl` — the retained flit-trace ring, replayable
//!   event by event.
//!
//! `--smoke` is accepted for CI symmetry with the other binaries; the
//! cell is Quick-scale either way, so it changes nothing.

use snoc_core::experiments::Scale;
use snoc_core::report::{self, Rows};
use snoc_core::scenario::Scenario;
use snoc_core::system::System;
use snoc_noc::telemetry::{EpochRow, TelemetrySummary, CLASS_NAMES, LATENCY_EDGES};
use snoc_workload::table3 as t3;
use std::fmt;

/// Per-router scalar rendered as a (layer, y) x (x) grid.
struct Heatmap {
    title: &'static str,
    width: usize,
    height: usize,
    /// Core layer first, then cache, row-major (network router order).
    values: Vec<f64>,
}

impl Heatmap {
    fn layer_rows(&self) -> Vec<(String, Vec<f64>)> {
        let n = self.width * self.height;
        let mut rows = Vec::with_capacity(2 * self.height);
        for (layer, base) in [("core", 0), ("cache", n)] {
            for y in 0..self.height {
                let start = base + y * self.width;
                rows.push((
                    format!("{layer}/y{y}"),
                    self.values[start..start + self.width].to_vec(),
                ));
            }
        }
        rows
    }
}

impl Rows for Heatmap {
    fn header(&self) -> Vec<String> {
        (0..self.width).map(|x| format!("x{x}")).collect()
    }
    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        self.layer_rows()
    }
}

impl fmt::Display for Heatmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        for (label, values) in self.layer_rows() {
            write!(f, "{label:>9}")?;
            for v in values {
                write!(f, " {v:8.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Latency histograms per class and per hop count over shared edges.
struct LatencyHist {
    summary: TelemetrySummary,
}

impl Rows for LatencyHist {
    fn header(&self) -> Vec<String> {
        let mut h: Vec<String> = LATENCY_EDGES.iter().map(|e| format!("<={e}")).collect();
        h.push(format!(">{}", LATENCY_EDGES[LATENCY_EDGES.len() - 1]));
        h
    }
    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        let counts = |h: &snoc_common::stats::Histogram| -> Vec<f64> {
            h.counts().iter().map(|&c| c as f64).collect()
        };
        let mut rows: Vec<(String, Vec<f64>)> = CLASS_NAMES
            .iter()
            .zip(&self.summary.class_latency)
            .map(|(name, h)| (format!("class/{name}"), counts(h)))
            .collect();
        let last = self.summary.hop_latency.len() - 1;
        for (i, h) in self.summary.hop_latency.iter().enumerate() {
            let label = if i == last {
                format!("hops/{i}+")
            } else {
                format!("hops/{i}")
            };
            rows.push((label, counts(h)));
        }
        rows
    }
}

impl fmt::Display for LatencyHist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "end-to-end latency histograms (counts per bucket)")?;
        writeln!(f, "buckets: {:?} + overflow", LATENCY_EDGES)?;
        for (label, values) in self.rows() {
            let total: f64 = values.iter().sum();
            if total == 0.0 {
                continue;
            }
            write!(f, "{label:>16} |")?;
            for v in values {
                write!(f, " {v:6.0}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The per-epoch time series as labelled rows.
struct TimeSeries {
    series: Vec<EpochRow>,
}

impl Rows for TimeSeries {
    fn header(&self) -> Vec<String> {
        [
            "in_flight",
            "buffered",
            "tsb_buffered",
            "busy_frac",
            "delivered_delta",
            "held_cycles_delta",
        ]
        .map(String::from)
        .to_vec()
    }
    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        self.series
            .iter()
            .map(|r| {
                (
                    format!("c{}", r.cycle),
                    vec![
                        r.in_flight as f64,
                        r.buffered as f64,
                        r.tsb_buffered as f64,
                        r.busy_frac,
                        r.delivered_delta as f64,
                        r.held_cycles_delta as f64,
                    ],
                )
            })
            .collect()
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "per-epoch time series ({} samples)", self.series.len())?;
        writeln!(
            f,
            "{:>8} {:>9} {:>8} {:>12} {:>9} {:>15} {:>17}",
            "cycle",
            "in_flight",
            "buffered",
            "tsb_buffered",
            "busy",
            "delivered_delta",
            "held_cycles_delta"
        )?;
        for r in &self.series {
            writeln!(
                f,
                "{:>8} {:>9} {:>8} {:>12} {:>9.3} {:>15} {:>17}",
                r.cycle,
                r.in_flight,
                r.buffered,
                r.tsb_buffered,
                r.busy_frac,
                r.delivered_delta,
                r.held_cycles_delta
            )?;
        }
        Ok(())
    }
}

fn main() {
    snoc_bench::strict_flags(&["--smoke"]);

    // Force the collector on for this binary regardless of the
    // caller's environment; epoch/trace overrides still apply.
    std::env::set_var("SNOC_TELEMETRY", "1");

    let cfg = Scale::Quick.apply(Scenario::SttRam4TsbWb.config());
    let (width, height) = (cfg.noc.width as usize, cfg.noc.height as usize);
    let app = t3::by_name("sap").expect("table 3 has sap");
    let metrics = System::homogeneous(cfg, app).run();
    let summary = metrics
        .telemetry
        .expect("telemetry was forced on for this run");
    eprintln!("telemetry: {}", summary.digest());

    let base = std::env::var("SNOC_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let dir = format!("{base}/telemetry");

    let util = Heatmap {
        title: "mean router buffer utilization (fraction of capacity)",
        width,
        height,
        values: summary.router_util.clone(),
    };
    let hold = Heatmap {
        title: "mean bank-aware hold delay per router (cycles)",
        width,
        height,
        values: summary.router_hold_mean.clone(),
    };
    let series = TimeSeries {
        series: summary.series.clone(),
    };
    let trace = summary.trace_jsonl();
    let hist = LatencyHist { summary };

    save(&dir, "fig6_util_heatmap", &util);
    save(&dir, "fig6_hold_heatmap", &hold);
    save(&dir, "fig6_latency_hist", &hist);
    save(&dir, "fig6_timeseries", &series);
    match report::save_raw(&dir, "fig6_trace", "jsonl", &trace) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("error: could not write trace under {dir}: {e}");
            std::process::exit(1);
        }
    }
}

fn save<R: Rows + fmt::Display>(dir: &str, name: &str, result: &R) {
    match report::save(dir, name, result) {
        Ok((txt, csv)) => eprintln!("wrote {} and {}", txt.display(), csv.display()),
        Err(e) => {
            eprintln!("error: could not write {name} under {dir}: {e}");
            std::process::exit(1);
        }
    }
}
