//! Content-addressed cache of sweep-cell results.
//!
//! A sweep cell is a pure function: `(SystemConfig, workload, drive
//! mode) -> RunMetrics`, bit-for-bit deterministic by construction.
//! [`cell_key`] folds exactly those inputs through the stable hasher
//! in `snoc_common::fingerprint` (never the standard library's
//! unstable `Hash`), and [`CellCache`] memoizes results under that
//! key — in an in-process map always, and in an opt-in on-disk store
//! when a directory is configured (`SNOC_CACHE_DIR` via
//! [`SweepRunner::from_env`](crate::sweep::SweepRunner::from_env), or
//! [`SweepRunner::cache_dir`](crate::sweep::SweepRunner::cache_dir)
//! programmatically).
//!
//! Only *plain* cells are cacheable: a cell carrying a fault plan, an
//! audit request or a telemetry request recomputes every time (its
//! metrics drag `AuditReport`/`TelemetrySummary`/`FaultSummary`
//! payloads that the codec deliberately does not serialize), and
//! failed cells are never stored.
//!
//! # On-disk format and trust
//!
//! One file per key, named by the key's 32 hex digits, in a
//! line-oriented text format headed by
//! `snoc-cell/2 snoc-bench/1 <crate version>` and terminated by an
//! FNV-1a-64 checksum of everything above it. Floats travel as IEEE
//! bit patterns, so a round-trip is exact. A reader trusts nothing: a
//! version/schema mismatch means the entry is stale and is silently
//! recomputed; any parse or checksum failure means the entry is
//! corrupt and is recomputed with a
//! [`RunObserver::cache_note`](crate::observer::RunObserver::cache_note)
//! — never a panic, never a silently wrong reuse.

use crate::metrics::RunMetrics;
use crate::sweep::RunSpec;
use crate::system::DriveMode;
use snoc_common::fingerprint::{fnv1a_64, Fingerprint, StableHasher};
use snoc_common::stats::Histogram;
use snoc_energy::EnergyBreakdown;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Schema tag of the on-disk cell format. Bump on any codec or
/// fingerprint change: stale entries are then ignored and recomputed.
const CELL_SCHEMA: &str = "snoc-cell/2";
/// The bench document schema this cache's stats vocabulary tracks.
const BENCH_SCHEMA: &str = "snoc-bench/1";

/// The content key of one sweep cell, or `None` when the cell is not
/// cacheable (fault/audit/telemetry instrumentation attached).
///
/// The key covers every modeled input: the full configuration
/// (including seed and warm-up/measure cycles, i.e. the scale) via
/// [`snoc_common::config::SystemConfig::hash_into`], the workload
/// name, the per-core application assignment, and the drive mode. It
/// deliberately excludes the cell label (presentation only) and
/// `noc.shards` (host parallelism; byte-identical output at any
/// value).
pub fn cell_key(spec: &RunSpec) -> Option<Fingerprint> {
    if spec.faults.is_some() || spec.audit.is_some() || spec.telemetry.is_some() {
        return None;
    }
    let mut h = StableHasher::new();
    h.write_str(CELL_SCHEMA);
    spec.cfg.hash_into(&mut h);
    h.write_str(&spec.workload.name);
    h.write_usize(spec.workload.apps.len());
    for app in &spec.workload.apps {
        h.write_str(app.name);
    }
    h.write_u8(match spec.mode {
        DriveMode::Profile => 0,
        DriveMode::FullStack => 1,
    });
    Some(h.finish())
}

/// Where a cache hit was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// The in-process map of this runner.
    Memory,
    /// The on-disk store.
    Disk,
}

/// The outcome of a cache probe.
#[derive(Debug, Default)]
pub struct Lookup {
    /// The memoized metrics, when the probe hit.
    pub metrics: Option<RunMetrics>,
    /// Where the hit came from.
    pub source: Option<CacheSource>,
    /// A diagnostic worth surfacing (corrupt entry, unreadable file);
    /// present only on a miss that found *something* untrustworthy.
    pub note: Option<String>,
}

/// A two-level (in-process + optional on-disk) store of cell results.
#[derive(Debug)]
pub struct CellCache {
    mem: Mutex<HashMap<Fingerprint, RunMetrics>>,
    dir: Option<PathBuf>,
}

impl CellCache {
    /// An empty cache, with an on-disk store rooted at `dir` when
    /// given.
    pub fn new(dir: Option<PathBuf>) -> Self {
        Self {
            mem: Mutex::new(HashMap::new()),
            dir,
        }
    }

    /// The file path of `key`'s entry, when a disk store is
    /// configured.
    pub fn entry_path(&self, key: Fingerprint) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key}.cell")))
    }

    /// The in-process map, recovered from poisoning.
    ///
    /// The cache is best-effort bookkeeping: a worker that panics
    /// while the map mutex is held (an OOM mid-`insert`, an assertion
    /// in a key's `Eq`) must not cascade into every *other* worker
    /// panicking on `lock().unwrap()` forever after — one isolated
    /// cell failure would take down the whole runner or server. The
    /// map's state is always coherent from the lock's point of view
    /// (`HashMap` insert/get never leave it torn across a panic we
    /// could observe), so the poison flag is cleared and the guard
    /// handed out.
    fn mem(&self) -> MutexGuard<'_, HashMap<Fingerprint, RunMetrics>> {
        self.mem.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Probes memory, then disk. A disk hit is promoted into the
    /// in-process map; a corrupt or stale disk entry is reported as a
    /// miss (with a note when corrupt) so the caller recomputes.
    pub fn lookup(&self, key: Fingerprint) -> Lookup {
        if let Some(m) = self.mem().get(&key) {
            return Lookup {
                metrics: Some(m.clone()),
                source: Some(CacheSource::Memory),
                note: None,
            };
        }
        let Some(path) = self.entry_path(key) else {
            return Lookup::default();
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::default(),
            Err(e) => {
                return Lookup {
                    note: Some(format!("unreadable cache entry {}: {e}", path.display())),
                    ..Lookup::default()
                }
            }
        };
        match decode(&text, key) {
            Ok(m) => {
                self.mem().insert(key, m.clone());
                Lookup {
                    metrics: Some(m),
                    source: Some(CacheSource::Disk),
                    note: None,
                }
            }
            Err(DecodeError::Stale) => Lookup::default(),
            Err(DecodeError::Corrupt(why)) => Lookup {
                note: Some(format!(
                    "corrupt cache entry {} ({why}); recomputing",
                    path.display()
                )),
                ..Lookup::default()
            },
        }
    }

    /// Memoizes a computed result in the in-process map and, when a
    /// disk store is configured, on disk.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the disk write fails (the in-process
    /// insert always succeeds; the cache stays best-effort).
    pub fn store(&self, key: Fingerprint, metrics: &RunMetrics) -> Result<(), String> {
        self.mem().insert(key, metrics.clone());
        let Some(path) = self.entry_path(key) else {
            return Ok(());
        };
        let doc = encode(metrics, key);
        let write = || -> std::io::Result<()> {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            // Write-then-rename so a concurrent reader never sees a
            // half-written entry (checksum would catch it anyway).
            let tmp = tmp_store_path(&path);
            std::fs::write(&tmp, &doc)?;
            std::fs::rename(&tmp, &path)
        };
        write().map_err(|e| format!("could not write cache entry {}: {e}", path.display()))
    }
}

/// A scratch path for writing `path`'s entry before the atomic rename.
///
/// The suffix must be unique per *writer*, not per process: two
/// workers of one process storing the same key at once would otherwise
/// interleave their `fs::write`s on a single tmp file and rename a
/// corrupt byte-mix into place — the checksum then flags the entry on
/// every later probe and the cache silently recomputes that cell
/// forever. A process-wide counter keeps concurrent writers on
/// disjoint tmp files (last rename wins, and every candidate is a
/// complete, valid document); the pid keeps concurrent *processes*
/// sharing one cache directory apart.
fn tmp_store_path(path: &Path) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    path.with_extension(format!("tmp.{:x}.{n:x}", std::process::id()))
}

/// Serializes plain-cell metrics (no audit/telemetry/fault
/// attachments) in the exact on-disk cell format, sealed by `key`. The
/// sweep server reuses this codec for its result payloads so a client
/// round-trip is bit-exact.
pub fn encode_metrics(metrics: &RunMetrics, key: Fingerprint) -> String {
    encode(metrics, key)
}

/// Decodes a document produced by [`encode_metrics`] under the same
/// `key`, rejecting stale or tampered text with a diagnostic.
pub fn decode_metrics(text: &str, key: Fingerprint) -> Result<RunMetrics, String> {
    decode(text, key).map_err(|e| match e {
        DecodeError::Stale => "stale schema/version".to_string(),
        DecodeError::Corrupt(why) => why,
    })
}

enum DecodeError {
    /// Different schema or crate version: the entry is from another
    /// world, not evidence of damage.
    Stale,
    /// The entry claims to be ours but does not parse or check out.
    Corrupt(String),
}

fn header() -> String {
    format!("{CELL_SCHEMA} {BENCH_SCHEMA} {}", env!("CARGO_PKG_VERSION"))
}

fn push_f64s(out: &mut String, name: &str, values: &[f64]) {
    out.push_str(name);
    for v in values {
        out.push_str(&format!(" {:016x}", v.to_bits()));
    }
    out.push('\n');
}

fn push_u64s(out: &mut String, name: &str, values: &[u64]) {
    out.push_str(name);
    for v in values {
        out.push_str(&format!(" {v}"));
    }
    out.push('\n');
}

/// Serializes plain-cell metrics (`audit`/`telemetry`/`faults` must be
/// `None`; [`cell_key`] guarantees cacheable cells satisfy that).
fn encode(m: &RunMetrics, key: Fingerprint) -> String {
    debug_assert!(
        m.audit.is_none() && m.telemetry.is_none() && m.faults.is_none(),
        "instrumented cells are not cacheable"
    );
    let mut out = String::new();
    out.push_str(&header());
    out.push('\n');
    out.push_str(&format!("key {key}\n"));
    push_u64s(&mut out, "cycles", &[m.cycles]);
    push_u64s(&mut out, "committed", &m.per_core_committed);
    push_f64s(
        &mut out,
        "latencies",
        &[
            m.net_request_latency,
            m.net_response_latency,
            m.bank_queue_wait,
            m.bank_service,
            m.uncore_rtt,
            m.uncore_rtt_p95,
        ],
    );
    push_u64s(
        &mut out,
        "counts",
        &[
            m.bank_reads,
            m.bank_writes,
            m.mem_fetches,
            m.held_packets,
            m.held_cycles,
        ],
    );
    push_u64s(&mut out, "hist_edges", m.post_write_gaps.edges());
    push_u64s(&mut out, "hist_counts", m.post_write_gaps.counts());
    push_f64s(
        &mut out,
        "shape",
        &[
            m.delayable_fraction,
            m.child_queue_mean,
            m.queue_mean_by_hops[0],
            m.queue_mean_by_hops[1],
            m.queue_mean_by_hops[2],
        ],
    );
    push_f64s(
        &mut out,
        "energy",
        &[
            m.energy.noc_dynamic_nj,
            m.energy.noc_leakage_nj,
            m.energy.cache_dynamic_nj,
            m.energy.cache_leakage_nj,
        ],
    );
    out.push_str(&format!("checksum {:016x}\n", fnv1a_64(out.as_bytes())));
    out
}

/// One `name v0 v1 ...` line, strictly in encode order.
fn fields<'a>(lines: &mut std::str::Lines<'a>, name: &str) -> Result<Vec<&'a str>, DecodeError> {
    let line = lines
        .next()
        .ok_or_else(|| DecodeError::Corrupt(format!("missing {name} line")))?;
    let mut parts = line.split(' ');
    if parts.next() != Some(name) {
        return Err(DecodeError::Corrupt(format!("expected {name} line")));
    }
    Ok(parts.collect())
}

fn u64s(raw: Vec<&str>, name: &str) -> Result<Vec<u64>, DecodeError> {
    raw.into_iter()
        .map(|s| {
            s.parse()
                .map_err(|_| DecodeError::Corrupt(format!("bad integer in {name}")))
        })
        .collect()
}

fn f64s(raw: Vec<&str>, name: &str, want: usize) -> Result<Vec<f64>, DecodeError> {
    if raw.len() != want {
        return Err(DecodeError::Corrupt(format!(
            "{name} holds {} values, expected {want}",
            raw.len()
        )));
    }
    raw.into_iter()
        .map(|s| {
            u64::from_str_radix(s, 16)
                .map(f64::from_bits)
                .map_err(|_| DecodeError::Corrupt(format!("bad float bits in {name}")))
        })
        .collect()
}

fn decode(text: &str, key: Fingerprint) -> Result<RunMetrics, DecodeError> {
    // Checksum first: everything up to and including the newline
    // before the checksum line must hash to the recorded value.
    let body_end = text
        .rfind("checksum ")
        .ok_or_else(|| DecodeError::Corrupt("missing checksum".into()))?;
    let recorded = text[body_end..]
        .trim_end()
        .strip_prefix("checksum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| DecodeError::Corrupt("unparsable checksum".into()))?;
    let actual = fnv1a_64(&text.as_bytes()[..body_end]);
    if recorded != actual {
        return Err(DecodeError::Corrupt(format!(
            "checksum mismatch: recorded {recorded:016x}, actual {actual:016x}"
        )));
    }

    let mut lines = text[..body_end].lines();
    match lines.next() {
        Some(h) if h == header() => {}
        // A well-formed but differently-versioned entry is stale, not
        // corrupt; quietly recompute.
        Some(h) if h.starts_with("snoc-cell/") => return Err(DecodeError::Stale),
        _ => return Err(DecodeError::Corrupt("unrecognized header".into())),
    }
    let keyline = fields(&mut lines, "key")?;
    match keyline.as_slice() {
        [k] if Fingerprint::from_hex(k) == Some(key) => {}
        [k] if Fingerprint::from_hex(k).is_some() => {
            return Err(DecodeError::Corrupt(
                "entry filed under the wrong key".into(),
            ))
        }
        _ => return Err(DecodeError::Corrupt("bad key line".into())),
    }

    let cycles = u64s(fields(&mut lines, "cycles")?, "cycles")?;
    let [cycles] = cycles.as_slice() else {
        return Err(DecodeError::Corrupt("cycles wants one value".into()));
    };
    let committed = u64s(fields(&mut lines, "committed")?, "committed")?;
    let lat = f64s(fields(&mut lines, "latencies")?, "latencies", 6)?;
    let counts = u64s(fields(&mut lines, "counts")?, "counts")?;
    let [bank_reads, bank_writes, mem_fetches, held_packets, held_cycles] = counts.as_slice()
    else {
        return Err(DecodeError::Corrupt("counts wants five values".into()));
    };
    let edges = u64s(fields(&mut lines, "hist_edges")?, "hist_edges")?;
    let hist_counts = u64s(fields(&mut lines, "hist_counts")?, "hist_counts")?;
    let post_write_gaps = Histogram::from_parts(edges, hist_counts)
        .map_err(|e| DecodeError::Corrupt(format!("bad histogram: {e}")))?;
    let shape = f64s(fields(&mut lines, "shape")?, "shape", 5)?;
    let energy = f64s(fields(&mut lines, "energy")?, "energy", 4)?;
    if lines.next().is_some() {
        return Err(DecodeError::Corrupt("trailing lines".into()));
    }

    Ok(RunMetrics {
        cycles: *cycles,
        per_core_committed: committed,
        net_request_latency: lat[0],
        net_response_latency: lat[1],
        bank_queue_wait: lat[2],
        bank_service: lat[3],
        uncore_rtt: lat[4],
        uncore_rtt_p95: lat[5],
        bank_reads: *bank_reads,
        bank_writes: *bank_writes,
        mem_fetches: *mem_fetches,
        post_write_gaps,
        delayable_fraction: shape[0],
        child_queue_mean: shape[1],
        queue_mean_by_hops: [shape[2], shape[3], shape[4]],
        held_packets: *held_packets,
        held_cycles: *held_cycles,
        energy: EnergyBreakdown {
            noc_dynamic_nj: energy[0],
            noc_leakage_nj: energy[1],
            cache_dynamic_nj: energy[2],
            cache_leakage_nj: energy[3],
        },
        audit: None,
        telemetry: None,
        faults: None,
    })
}

/// Reads `SNOC_CACHE_DIR` (non-empty) as the opt-in disk store root.
pub(crate) fn dir_from_env() -> Option<PathBuf> {
    std::env::var("SNOC_CACHE_DIR")
        .ok()
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;

    fn sample_metrics() -> RunMetrics {
        let mut hist = Histogram::fig3();
        for v in [5, 20, 40, 70, 100, 140, 200, 20] {
            hist.record(v);
        }
        RunMetrics {
            cycles: 3_000,
            per_core_committed: (0..64).map(|i| 1_000 + i).collect(),
            net_request_latency: 20.25,
            net_response_latency: 25.125,
            bank_queue_wait: 10.0625,
            bank_service: 5.5,
            uncore_rtt: 61.75,
            uncore_rtt_p95: 123.5,
            bank_reads: 10_000,
            bank_writes: 5_000,
            mem_fetches: 321,
            post_write_gaps: hist,
            delayable_fraction: 0.17,
            child_queue_mean: 3.25,
            queue_mean_by_hops: [1.5, 3.0, 4.5],
            held_packets: 55,
            held_cycles: 550,
            energy: EnergyBreakdown {
                noc_dynamic_nj: 1.0e3,
                noc_leakage_nj: 2.0e3,
                cache_dynamic_nj: 3.0e3,
                cache_leakage_nj: 4.0e3,
            },
            audit: None,
            telemetry: None,
            faults: None,
        }
    }

    fn key() -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_str("test-key");
        h.finish()
    }

    #[test]
    fn codec_round_trips_exactly() {
        let m = sample_metrics();
        let doc = encode(&m, key());
        let back = match decode(&doc, key()) {
            Ok(b) => b,
            Err(DecodeError::Corrupt(why)) => panic!("corrupt: {why}"),
            Err(DecodeError::Stale) => panic!("stale"),
        };
        // RunMetrics is not PartialEq; Debug covers every field and
        // renders floats exactly enough for the values used here.
        assert_eq!(format!("{m:?}"), format!("{back:?}"));
    }

    #[test]
    fn decode_rejects_tampering_without_panicking() {
        let doc = encode(&sample_metrics(), key());
        // Flip one digit in the middle of the document.
        let tampered = doc.replacen("latencies", "latenciez", 1);
        assert!(matches!(
            decode(&tampered, key()),
            Err(DecodeError::Corrupt(_))
        ));
        // Truncate.
        assert!(matches!(
            decode(&doc[..doc.len() / 2], key()),
            Err(DecodeError::Corrupt(_))
        ));
        // Garbage.
        assert!(matches!(
            decode("hello\nworld\n", key()),
            Err(DecodeError::Corrupt(_))
        ));
        // Wrong key (checksum fine, content filed wrongly).
        let mut h = StableHasher::new();
        h.write_str("other-key");
        assert!(matches!(
            decode(&doc, h.finish()),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn version_mismatch_is_stale_not_corrupt() {
        let doc = encode(&sample_metrics(), key());
        // Rewrite the header to an older crate version and re-seal the
        // checksum so only the version differs.
        let body_end = doc.rfind("checksum ").unwrap();
        let old_body = doc[..body_end].replacen(&header(), "snoc-cell/1 snoc-bench/1 0.0.0", 1);
        let resealed = format!(
            "{old_body}checksum {:016x}\n",
            fnv1a_64(old_body.as_bytes())
        );
        assert!(matches!(decode(&resealed, key()), Err(DecodeError::Stale)));
    }

    #[test]
    fn disk_store_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("snoc-cellcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CellCache::new(Some(dir.clone()));
        let k = key();
        assert!(cache.lookup(k).metrics.is_none(), "empty cache misses");
        cache.store(k, &sample_metrics()).expect("store succeeds");

        // A fresh cache (cold in-process map) reads it back from disk.
        let cold = CellCache::new(Some(dir.clone()));
        let hit = cold.lookup(k);
        assert_eq!(hit.source, Some(CacheSource::Disk));
        assert_eq!(
            format!("{:?}", hit.metrics.unwrap()),
            format!("{:?}", sample_metrics())
        );
        // And now serves it from memory.
        assert_eq!(cold.lookup(k).source, Some(CacheSource::Memory));

        // Corrupt the entry on disk: a fresh cache must miss with a
        // note, not panic or trust it.
        let path = cache.entry_path(k).unwrap();
        std::fs::write(&path, "snoc-cell/1 snoc-bench/1 gibberish\n").unwrap();
        let fresh = CellCache::new(Some(dir.clone()));
        let probe = fresh.lookup(k);
        assert!(probe.metrics.is_none());
        assert!(probe.note.unwrap().contains("corrupt"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_store_paths_are_writer_unique() {
        // Regression: the tmp suffix was pid-only, so two same-process
        // workers storing the same key shared one tmp path and could
        // rename an interleaved write into place. Every call — from
        // any thread — must now yield a fresh path.
        let entry = PathBuf::from("/cache/0123.cell");
        let a = tmp_store_path(&entry);
        let b = tmp_store_path(&entry);
        assert_ne!(a, b, "two writers were handed the same tmp path");
        let from_thread = std::thread::spawn({
            let entry = entry.clone();
            move || tmp_store_path(&entry)
        })
        .join()
        .unwrap();
        assert_ne!(a, from_thread);
        assert_ne!(b, from_thread);
        for p in [&a, &b, &from_thread] {
            assert!(p.to_string_lossy().contains("tmp."), "scratch-named: {p:?}");
        }
    }

    #[test]
    fn concurrent_stores_of_one_key_never_corrupt_the_entry() {
        let dir =
            std::env::temp_dir().join(format!("snoc-cellcache-concurrent-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CellCache::new(Some(dir.clone()));
        let k = key();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..24 {
                        cache.store(k, &sample_metrics()).expect("store succeeds");
                    }
                });
            }
        });
        // A cold cache must read back a pristine entry — no corruption
        // note, no silent recompute.
        let cold = CellCache::new(Some(dir.clone()));
        let probe = cold.lookup(k);
        assert!(probe.note.is_none(), "corrupt entry: {:?}", probe.note);
        assert_eq!(probe.source, Some(CacheSource::Disk));
        assert_eq!(
            format!("{:?}", probe.metrics.unwrap()),
            format!("{:?}", sample_metrics())
        );
        // Every tmp file was renamed away.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x != "cell"))
            .collect();
        assert!(stray.is_empty(), "leftover tmp files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_poisoned_map_mutex_degrades_gracefully() {
        // Regression: a panic while the map mutex was held poisoned it,
        // and every later lookup/store panicked on `lock().unwrap()` —
        // one isolated failure cascaded into killing the runner. The
        // cache must shrug the poison off and keep serving.
        let cache = CellCache::new(None);
        let k = key();
        cache.store(k, &sample_metrics()).unwrap();
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = cache.mem.lock().unwrap();
            panic!("worker dies holding the cache lock");
        }));
        assert!(cache.mem.is_poisoned(), "the panic must have poisoned");
        let hit = cache.lookup(k);
        assert_eq!(hit.source, Some(CacheSource::Memory));
        cache
            .store(k, &sample_metrics())
            .expect("store still works");
    }

    #[test]
    fn a_poisoned_shared_cache_does_not_kill_a_sweep() {
        // The same defect observed from above: pre-fix, a sweep whose
        // shared cache had been poisoned panicked on the very first
        // cell probe (outside the per-cell catch_unwind), taking the
        // whole runner — and in the server, every later job — with it.
        use crate::scenario::Scenario;
        use crate::sweep::{RunSpec, SweepRunner};
        let cache = std::sync::Arc::new(CellCache::new(None));
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = cache.mem.lock().unwrap();
            panic!("cell worker dies holding the cache lock");
        }));
        assert!(cache.mem.is_poisoned());
        let cfg = Scenario::Sram64Tsb
            .config()
            .rebuild()
            .cycles(100, 400)
            .build();
        let grid = vec![RunSpec::homogeneous(
            "a",
            cfg,
            snoc_workload::table3::by_name("tpcc").unwrap(),
        )];
        let results = SweepRunner::new()
            .shared_cache(std::sync::Arc::clone(&cache))
            .run_grid("poisoned", grid);
        assert!(results[0].outcome.is_ok(), "sweep survived the poison");
    }

    #[test]
    fn public_codec_wrappers_round_trip() {
        let m = sample_metrics();
        let doc = encode_metrics(&m, key());
        let back = decode_metrics(&doc, key()).expect("round trip");
        assert_eq!(format!("{m:?}"), format!("{back:?}"));
        assert!(decode_metrics("garbage", key()).is_err());
    }

    #[test]
    fn memory_only_cache_needs_no_disk() {
        let cache = CellCache::new(None);
        let k = key();
        assert!(cache.entry_path(k).is_none());
        cache
            .store(k, &sample_metrics())
            .expect("memory-only store");
        assert_eq!(cache.lookup(k).source, Some(CacheSource::Memory));
    }
}
