//! Deterministic random-number helpers.
//!
//! Every stochastic component of the simulator draws from a
//! [`SimRng`] derived from the master seed and a *stream label*, so
//! adding components never perturbs the random streams of existing ones
//! and identical `(config, seed)` pairs replay bit-for-bit.
//!
//! The generator is a self-contained xoshiro256++ (the same algorithm
//! `rand`'s `SmallRng` uses on 64-bit targets) so the workspace builds
//! with no external dependencies.

/// The simulator's random-number generator.
///
/// A seeded xoshiro256++ with the handful of draws the workload
/// generator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl SimRng {
    /// Creates a generator for a named stream under a master seed.
    ///
    /// The same `(seed, stream)` pair always yields the same sequence.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        // SplitMix64 over (seed, stream) decorrelates the streams and
        // expands the pair into the 256-bit xoshiro state.
        let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        out
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits -> the standard dyadic-rational conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift; the bias is < 2^-40 for any bound
        // the simulator uses, far below simulation noise.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// A geometric draw: number of failures before the first success
    /// with success probability `p`, capped at `cap`.
    pub fn geometric(&mut self, p: f64, cap: usize) -> usize {
        let p = p.clamp(1e-9, 1.0);
        let mut n = 0;
        while n < cap && !self.chance(p) {
            n += 1;
        }
        n
    }

    /// A raw 64-bit draw.
    pub fn bits(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_replays() {
        let mut a = SimRng::for_stream(42, 7);
        let mut b = SimRng::for_stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn different_streams_decorrelate() {
        let mut a = SimRng::for_stream(42, 7);
        let mut b = SimRng::for_stream(42, 8);
        let same = (0..64).filter(|_| a.bits() == b.bits()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::for_stream(1, 1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::for_stream(3, 3);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = SimRng::for_stream(11, 4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = SimRng::for_stream(5, 5);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_mean_is_near_half() {
        let mut r = SimRng::for_stream(6, 6);
        let mean = (0..4096).map(|_| r.unit()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn geometric_respects_cap() {
        let mut r = SimRng::for_stream(9, 9);
        for _ in 0..100 {
            assert!(r.geometric(0.01, 5) <= 5);
        }
    }
}
