//! Regenerates the paper's Figures 11 and 12 (region/TSB sensitivity).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("fig12", &snoc_core::experiments::fig12::run(scale));
}
