//! Tracked performance baseline for the simulator hot path.
//!
//! Times the workloads the perf trajectory is anchored on — the bare
//! network-step kernel, one full Quick-scale fig6 cell, and the
//! Quick-scale fig6 sweep both cold (caching and warm reuse off) and
//! warm (cache-hit steady state) — and writes `BENCH_hotpath.json`
//! (override with `--out <path>`) so every PR lands on a
//! machine-readable perf record.
//!
//! When `SNOC_BENCH_BASELINE=<path>` names a previous `snoc-bench/1`
//! document (e.g. a checked-in `BENCH_hotpath.json` from before a
//! change), matching benchmarks gain `baseline_*_ns` and `speedup_*`
//! fields so the document itself shows the delta.
//!
//! `--smoke` shrinks the warm-up/measure budgets to a fraction of a
//! second; it exists so CI can keep this binary building and running
//! without paying for a real measurement.
//!
//! `--assert-within <pct>` turns the baseline comparison into a gate:
//! the process exits nonzero when the `kernels/network_step` *best*
//! iteration is more than `pct` percent slower than the baseline's
//! best (best-vs-best because a loaded CI machine inflates the mean
//! far more than the minimum). It requires a readable
//! `SNOC_BENCH_BASELINE` with that benchmark in it.

use snoc_bench::harness::{self, Timing};
use snoc_common::config::SystemConfig;
use snoc_common::geom::{Coord, Layer};
use snoc_core::experiments::{fig6, Scale};
use snoc_core::scenario::Scenario;
use snoc_core::sweep::{Experiment, SweepRunner};
use snoc_core::system::System;
use snoc_noc::{Network, NetworkParams, Packet, PacketKind};
use snoc_workload::table3 as t3;
use std::time::Duration;

/// Parsed command line. Parsing is strict: an unknown or misspelled
/// flag (`--asert-within`, say) must fail loudly *before* any
/// measurement runs or `BENCH_hotpath.json` is overwritten — this
/// binary's default output is a checked-in baseline, and silently
/// rewriting it from a typo'd invocation corrupts the perf record.
struct Cli {
    smoke: bool,
    out: String,
    assert_within: Option<f64>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        smoke: false,
        out: "BENCH_hotpath.json".to_string(),
        assert_within: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cli.smoke = true,
            "--out" => {
                cli.out = args.next().ok_or("--out requires a path operand")?;
            }
            "--assert-within" => {
                let v = args.next().ok_or("--assert-within requires a percentage")?;
                let pct: f64 = v
                    .parse()
                    .map_err(|_| format!("--assert-within: `{v}` is not a number"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!("--assert-within: `{v}` must be >= 0"));
                }
                cli.assert_within = Some(pct);
            }
            _ => return Err(format!("unrecognized argument `{arg}`")),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: {} [--smoke] [--out <path>] [--assert-within <pct>]",
                snoc_bench::bin_name()
            );
            std::process::exit(2);
        }
    };
    let Cli {
        smoke,
        out,
        assert_within,
    } = cli;

    let (warmup, measure) = if smoke {
        (Duration::from_millis(20), Duration::from_millis(120))
    } else {
        (Duration::from_millis(500), Duration::from_secs(6))
    };

    // The bare hot path: default-geometry network (two 8x8 meshes),
    // 64 in-flight bank reads, 1000 cycles per iteration.
    let network_step = harness::bench_with("kernels/network_step", warmup, measure, || {
        let cfg = SystemConfig::default();
        let mut net = Network::new(NetworkParams::from_config(&cfg));
        for i in 0..64u64 {
            let src = Coord::new((i % 8) as u8, ((i / 8) % 8) as u8, Layer::Core);
            let dst = Coord::new(((i * 5) % 8) as u8, ((i * 11) % 8) as u8, Layer::Cache);
            net.inject(Packet::new(PacketKind::BankRead, src, dst, i, i));
        }
        net.run(1_000);
        net.stats().delivered
    });

    // One full-system Quick-scale fig6 cell: cores + caches + banks +
    // memory controllers end to end, STT-RAM with bank-aware
    // arbitration (the paper's headline configuration).
    let app = t3::by_name("sap").unwrap();
    let fig6_cell = harness::bench_with("fig6/cell/sap/SttRam4TsbWb", warmup, measure, || {
        System::homogeneous(Scale::Quick.apply(Scenario::SttRam4TsbWb.config()), app).run()
    });

    // The incremental-sweep machinery: one full Quick-scale fig6 grid
    // per iteration. "Cold" disables result caching and warm-state
    // reuse (every iteration pays full price); "warm" shares one
    // runner, whose in-process cache is primed during the harness
    // warm-up window, so every measured iteration is pure cache hits.
    let grid = || fig6::Fig6.grid(Scale::Quick);
    let sweep_cold = harness::bench_with("sweep/fig6_quick_cold", warmup, measure, || {
        SweepRunner::new()
            .cache(false)
            .warm_reuse(false)
            .run_grid("fig6/bench-cold", grid())
            .len()
    });
    let warm_runner = SweepRunner::new();
    let sweep_warm = harness::bench_with("sweep/fig6_quick_warm", warmup, measure, || {
        warm_runner.run_grid("fig6/bench-warm", grid()).len()
    });

    let records = vec![
        ("kernels/network_step".to_string(), network_step),
        ("fig6/cell/sap/SttRam4TsbWb".to_string(), fig6_cell),
        ("sweep/fig6_quick_cold".to_string(), sweep_cold),
        ("sweep/fig6_quick_warm".to_string(), sweep_warm),
    ];
    let baseline = std::env::var("SNOC_BENCH_BASELINE")
        .ok()
        .filter(|p| !p.is_empty())
        .and_then(|p| match std::fs::read_to_string(&p) {
            Ok(doc) => Some(harness::from_json(&doc)),
            Err(e) => {
                eprintln!("warning: could not read baseline {p}: {e}");
                None
            }
        })
        .unwrap_or_default();

    let doc = render(&records, &baseline);
    match std::fs::write(&out, &doc) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("error: failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
    for (name, t) in &records {
        if let Some((_, b)) = baseline.iter().find(|(n, _)| n == name) {
            println!(
                "{name}: {:.2}x mean speedup, {:.2}x best speedup vs baseline",
                ratio(b.mean, t.mean),
                ratio(b.best, t.best),
            );
        }
    }

    if let Some(pct) = assert_within {
        let name = "kernels/network_step";
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == name) else {
            eprintln!(
                "error: --assert-within needs a baseline entry for {name} \
                 (point SNOC_BENCH_BASELINE at a snoc-bench/1 document)"
            );
            std::process::exit(1);
        };
        let (_, t) = records.iter().find(|(n, _)| n == name).expect("bench ran");
        let limit_ns = base.best.as_nanos() as f64 * (1.0 + pct / 100.0);
        if t.best.as_nanos() as f64 > limit_ns {
            eprintln!(
                "error: {name} best {:.3} ms exceeds baseline best {:.3} ms by more than {pct}%",
                t.best.as_secs_f64() * 1e3,
                base.best.as_secs_f64() * 1e3,
            );
            std::process::exit(1);
        }
        eprintln!(
            "{name}: best {:.3} ms within {pct}% of baseline best {:.3} ms",
            t.best.as_secs_f64() * 1e3,
            base.best.as_secs_f64() * 1e3,
        );
    }
}

fn ratio(base: Duration, new: Duration) -> f64 {
    base.as_nanos() as f64 / new.as_nanos().max(1) as f64
}

/// `snoc-bench/1` document with optional per-bench baseline comparison
/// fields, one bench object per line (the shape `harness::from_json`
/// parses).
fn render(records: &[(String, Timing)], baseline: &[(String, Timing)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"snoc-bench/1\",\n  \"benches\": [\n");
    for (i, (name, t)) in records.iter().enumerate() {
        let mut line = format!(
            "    {{\"name\": \"{name}\", \"iters\": {}, \"mean_ns\": {}, \"best_ns\": {}, \"worst_ns\": {}",
            t.iters,
            t.mean.as_nanos(),
            t.best.as_nanos(),
            t.worst.as_nanos(),
        );
        if let Some((_, b)) = baseline.iter().find(|(n, _)| n == name) {
            line.push_str(&format!(
                ", \"baseline_mean_ns\": {}, \"baseline_best_ns\": {}, \"speedup_mean\": {:.3}, \"speedup_best\": {:.3}",
                b.mean.as_nanos(),
                b.best.as_nanos(),
                ratio(b.mean, t.mean),
                ratio(b.best, t.best),
            ));
        }
        line.push('}');
        if i + 1 < records.len() {
            line.push(',');
        }
        line.push('\n');
        out.push_str(&line);
    }
    out.push_str("  ]\n}\n");
    out
}
