//! Benchmark harness for the STT-RAM NoC reproduction.
//!
//! One `repro-*` binary per table/figure regenerates the paper's
//! rows/series at full scale (pass `--quick` for a fast pass), and one
//! bench per table/figure prints the quick-scale result and times a
//! representative kernel on the dependency-free [`harness`].

pub mod harness;

use snoc_core::experiments::Scale;
use snoc_core::report::{self, Rows};
use std::fmt::Display;

/// Parses the experiment scale from the command line (`--quick` for
/// the reduced configuration; full scale otherwise).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    }
}

/// Prints an experiment result to stdout and dumps its text/CSV
/// renderings into the results directory (`SNOC_RESULTS_DIR`, default
/// `results/`). Diagnostics go to stderr so stdout stays a clean,
/// reproducible report.
pub fn emit<R: Rows + Display>(name: &str, result: &R) {
    println!("{result}");
    let dir = std::env::var("SNOC_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    match report::save(&dir, name, result) {
        Ok((txt, csv)) => eprintln!("wrote {} and {}", txt.display(), csv.display()),
        Err(e) => eprintln!("could not write results under {dir}: {e}"),
    }
}
