//! Property tests for the generalized geometry: randomized meshes,
//! region counts and placements, checking the invariants the paper's
//! 8x8 / 4-region examples rely on — the region map partitions the
//! mesh, every bank has exactly one parent, and `retarget_tsb`
//! re-homing (the mid-run TSB-kill path) moves only the victim
//! region's descent point.

use snoc_common::config::TsbPlacement;
use snoc_common::geom::{Geometry, Mesh};
use snoc_common::ids::{BankId, NodeId, RegionId};
use snoc_common::rng::SimRng;
use snoc_noc::parent::ParentMap;
use snoc_noc::regions::RegionMap;

/// Deterministic sample of valid `(mesh, regions, placement)` triples.
fn sample_geometries(samples: usize, seed: u64) -> Vec<(Mesh, usize, TsbPlacement)> {
    let mut rng = SimRng::for_stream(seed, 0);
    let mut out = Vec::new();
    while out.len() < samples {
        let w = (2 + rng.below(15)) as u8; // 2..=16
        let h = (2 + rng.below(15)) as u8;
        let mesh = Mesh::new(w, h);
        let placement = if rng.below(2) == 0 {
            TsbPlacement::Corner
        } else {
            TsbPlacement::Staggered
        };
        let tileable: Vec<usize> = (1..=32)
            .filter(|&k| k <= mesh.nodes_per_layer())
            .filter(|&k| Geometry::try_new(mesh, k, placement, 1).is_ok())
            .collect();
        if tileable.is_empty() {
            continue;
        }
        let k = tileable[rng.below(tileable.len())];
        out.push((mesh, k, placement));
    }
    out
}

#[test]
fn region_maps_partition_any_mesh() {
    for (mesh, k, placement) in sample_geometries(40, 0xA11) {
        let map = RegionMap::new(mesh, k, placement);
        let per_region = mesh.nodes_per_layer() / k;
        for r in 0..k {
            let rid = RegionId::new(r as u16);
            assert_eq!(
                map.banks_in(rid).count(),
                per_region,
                "{}x{} k={k} {placement:?} region {r}",
                mesh.width(),
                mesh.height()
            );
            // The TSB sits inside its own region and on the mesh.
            let tsb = map.tsb_node(rid);
            assert!(tsb.index() < mesh.nodes_per_layer());
            assert_eq!(map.region_of(tsb), rid);
        }
        // Distinct regions get distinct TSB nodes.
        let mut tsbs: Vec<_> = (0..k)
            .map(|r| map.tsb_node(RegionId::new(r as u16)))
            .collect();
        tsbs.sort_unstable();
        tsbs.dedup();
        assert_eq!(
            tsbs.len(),
            k,
            "TSBs collide on {}x{}",
            mesh.width(),
            mesh.height()
        );
    }
}

#[test]
fn region_map_agrees_with_its_geometry() {
    for (mesh, k, placement) in sample_geometries(25, 0xB22) {
        let geom = Geometry::new(mesh, k, placement, 1);
        let map = RegionMap::new(mesh, k, placement);
        for node in mesh.nodes() {
            assert_eq!(map.region_of(node), geom.region_of(node));
        }
        for (r, &tsb) in geom.tsb_nodes().iter().enumerate() {
            assert_eq!(map.tsb_node(RegionId::new(r as u16)), tsb);
        }
    }
}

#[test]
fn every_bank_has_exactly_one_parent_at_any_geometry() {
    for (mesh, k, placement) in sample_geometries(25, 0xC33) {
        let regions = RegionMap::new(mesh, k, placement);
        for hops in [1u32, 2, 3] {
            let map = ParentMap::new(mesh, &regions, hops, 2, 1);
            // Coverage: summing children over all parents counts every
            // bank once...
            let total: usize = map
                .parents()
                .map(|p| map.children_of(p).unwrap().len())
                .sum();
            assert_eq!(total, mesh.nodes_per_layer());
            // ...and each bank's recorded parent lists it as a child
            // with a positive uncontended latency.
            for n in 0..mesh.nodes_per_layer() {
                let bank = BankId::new(n as u16);
                let parent = map.parent_of(bank);
                let info = map.child_info(parent, bank).unwrap_or_else(|| {
                    panic!(
                        "{}x{} k={k} H={hops}: bank {n} missing from its parent",
                        mesh.width(),
                        mesh.height()
                    )
                });
                assert!(info.base_latency > 0);
                assert!(info.hops >= 1);
            }
        }
    }
}

#[test]
fn retarget_preserves_partition_and_moves_only_the_victim() {
    let mut rng = SimRng::for_stream(0xD44, 0);
    for (mesh, k, placement) in sample_geometries(25, 0xD44) {
        let mut map = RegionMap::new(mesh, k, placement);
        let before: Vec<_> = (0..k)
            .map(|r| map.tsb_node(RegionId::new(r as u16)))
            .collect();
        let victim = RegionId::new(rng.below(k) as u16);
        // Re-home onto another region's surviving TSB when there is
        // one (the fault path's choice), else onto a random node.
        let survivor = if k > 1 {
            before[(victim.index() + 1) % k]
        } else {
            NodeId::new(rng.below(mesh.nodes_per_layer()) as u16)
        };
        map.retarget_tsb(victim, survivor);
        for (r, &old_tsb) in before.iter().enumerate() {
            let rid = RegionId::new(r as u16);
            // The silicon tiling is untouched.
            assert_eq!(map.banks_in(rid).count(), mesh.nodes_per_layer() / k);
            // Only the victim's TSB assignment moved.
            if rid == victim {
                assert_eq!(map.tsb_node(rid), survivor);
            } else {
                assert_eq!(map.tsb_node(rid), old_tsb);
            }
        }
        // Every bank still resolves to a descent point, and a rebuilt
        // parent map still covers every bank exactly once.
        for node in mesh.nodes() {
            let tsb = map.tsb_for(node);
            assert!(tsb.index() < mesh.nodes_per_layer());
        }
        let parents = ParentMap::new(mesh, &map, 2, 2, 1);
        let total: usize = parents
            .parents()
            .map(|p| parents.children_of(p).unwrap().len())
            .sum();
        assert_eq!(total, mesh.nodes_per_layer());
        // The victim's banks re-homed: each still has exactly one
        // parent that lists it.
        for bank in map.banks_in(victim) {
            assert!(parents.child_info(parents.parent_of(bank), bank).is_some());
        }
    }
}
