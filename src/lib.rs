//! Reproduction of *Architecting On-Chip Interconnects for Stacked 3D
//! STT-RAM Caches in CMPs* (Mishra et al., ISCA 2011).
//!
//! This facade crate re-exports the workspace crates so the examples
//! and integration tests can use one import root:
//!
//! * [`common`] — identifiers, geometry, configuration, statistics.
//! * [`noc`] — the cycle-level 3D wormhole NoC with STT-RAM-aware
//!   arbitration (regions, TSBs, parent routers, SS/RCA/WB).
//! * [`mem`] — L1/L2 caches, MESI directory, bank timing, BUFF-20
//!   write buffer, memory controllers.
//! * [`cpu`] — the out-of-order core model.
//! * [`workload`] — the 42-application synthetic workload suite.
//! * [`energy`] — NoC and cache energy models, mini-CACTI.
//! * [`sim`] — the assembled 3D CMP system, the six design scenarios,
//!   metrics and every experiment of the evaluation section.
//!
//! # Quickstart
//!
//! ```
//! use sttram_noc_repro::sim::scenario::Scenario;
//! use sttram_noc_repro::sim::system::System;
//! use sttram_noc_repro::workload::table3;
//!
//! let profile = table3::by_name("tpcc").expect("tpcc is in Table 3");
//! let mut cfg = Scenario::SttRam4TsbWb.config();
//! cfg.warmup_cycles = 200;
//! cfg.measure_cycles = 2_000;
//! let mut system = System::homogeneous(cfg, profile);
//! let metrics = system.run();
//! assert!(metrics.instruction_throughput() > 0.0);
//! ```

pub use snoc_common as common;
pub use snoc_core as sim;
pub use snoc_cpu as cpu;
pub use snoc_energy as energy;
pub use snoc_mem as mem;
pub use snoc_noc as noc;
pub use snoc_workload as workload;
