//! Full-stack MESI coherence integration: real L1/L2 tags, directory
//! forwards/invalidations and home-routed writebacks — at the message
//! level (L1 + home bank pumped directly) and through the complete 3D
//! system.

use sttram_noc_repro::common::config::{MemConfig, MemTech};
use sttram_noc_repro::common::ids::{BankId, CoreId};
use sttram_noc_repro::mem::l1::{AccessOutcome, L1Cache, MesiState};
use sttram_noc_repro::mem::l2bank::{L2Bank, TagMode};
use sttram_noc_repro::mem::protocol::{BankIn, BankMsg, L1In, L1Msg};
use sttram_noc_repro::sim::scenario::Scenario;
use sttram_noc_repro::sim::system::{DriveMode, System};
use sttram_noc_repro::workload::mixes::Workload;
use sttram_noc_repro::workload::table3;

/// A two-core, one-bank message-level testbench (no network): L1
/// outputs feed the home bank, bank outputs feed the L1s, memory
/// fetches fill instantly.
struct Bench {
    l1s: Vec<L1Cache>,
    bank: L2Bank,
    to_bank: Vec<(CoreId, L1Msg)>,
    now: u64,
}

impl Bench {
    fn new() -> Self {
        let cfg = MemConfig::default();
        Bench {
            l1s: (0..2)
                .map(|i| L1Cache::new(CoreId::new(i), &cfg, 1))
                .collect(),
            bank: L2Bank::new(BankId::new(0), &cfg, MemTech::SttRam, None, TagMode::Real),
            to_bank: Vec::new(),
            now: 0,
        }
    }

    fn access(&mut self, core: usize, addr: u64, write: bool, token: u64) -> AccessOutcome {
        let (outcome, msgs) = self.l1s[core].access(addr, write, token);
        self.to_bank
            .extend(msgs.into_iter().map(|m| (CoreId::new(core as u16), m)));
        outcome
    }

    /// Pumps messages until quiescent; returns retired tokens per core.
    fn settle(&mut self) -> Vec<Vec<u64>> {
        let mut retired = vec![Vec::new(); self.l1s.len()];
        for _ in 0..5_000 {
            self.now += 1;
            let mut bank_out = self.bank.tick(self.now);
            for (core, msg) in std::mem::take(&mut self.to_bank) {
                let m = match msg {
                    L1Msg::GetS { block, .. } => BankIn::GetS { block, from: core },
                    L1Msg::GetM { block, .. } => BankIn::GetM { block, from: core },
                    L1Msg::PutM { block, .. } => BankIn::PutM { block, from: core },
                    L1Msg::FwdData { block, txn, .. } => BankIn::FwdData {
                        block,
                        from: core,
                        txn,
                    },
                    L1Msg::FwdMiss { block, txn, .. } => BankIn::FwdMiss {
                        block,
                        from: core,
                        txn,
                    },
                    L1Msg::InvAck { block, .. } => BankIn::InvAck { block, from: core },
                };
                bank_out.extend(self.bank.handle(m, false, self.now));
            }
            for out in bank_out {
                match out {
                    BankMsg::Data {
                        block,
                        to,
                        exclusive,
                    } => {
                        let (msgs, done) =
                            self.l1s[to.index()].handle(L1In::Data { block, exclusive });
                        retired[to.index()].extend(done);
                        self.to_bank.extend(msgs.into_iter().map(|m| (to, m)));
                    }
                    BankMsg::Inv { block, to } => {
                        let (msgs, _) = self.l1s[to.index()].handle(L1In::Inv {
                            block,
                            home: BankId::new(0),
                        });
                        self.to_bank.extend(msgs.into_iter().map(|m| (to, m)));
                    }
                    BankMsg::FwdGetS { block, to, txn } => {
                        let (msgs, _) = self.l1s[to.index()].handle(L1In::FwdGetS {
                            block,
                            home: BankId::new(0),
                            txn,
                        });
                        self.to_bank.extend(msgs.into_iter().map(|m| (to, m)));
                    }
                    BankMsg::FwdGetM { block, to, txn } => {
                        let (msgs, _) = self.l1s[to.index()].handle(L1In::FwdGetM {
                            block,
                            home: BankId::new(0),
                            txn,
                        });
                        self.to_bank.extend(msgs.into_iter().map(|m| (to, m)));
                    }
                    BankMsg::Fetch { block } => {
                        // Instant memory for the testbench.
                        self.bank.handle(BankIn::Fill { block }, false, self.now);
                    }
                    BankMsg::WriteMem { .. } => {}
                }
            }
            if self.to_bank.is_empty() && self.bank.is_quiescent() {
                break;
            }
        }
        retired
    }
}

#[test]
fn producer_consumer_sharing_through_the_home_bank() {
    let mut b = Bench::new();
    const BLOCK: u64 = 0x4000;

    // Core 0 writes the block (cold GetM -> fetch -> M).
    assert_eq!(b.access(0, BLOCK, true, 1), AccessOutcome::Miss);
    let retired = b.settle();
    assert_eq!(retired[0], vec![1]);
    assert_eq!(b.l1s[0].state_of(BLOCK), Some(MesiState::M));

    // Core 1 reads it: the home forwards to core 0, which supplies
    // its dirty data back through the home (an STT-RAM write) and
    // downgrades to S.
    assert_eq!(b.access(1, BLOCK, false, 2), AccessOutcome::Miss);
    let retired = b.settle();
    assert_eq!(retired[1], vec![2]);
    assert_eq!(b.l1s[0].state_of(BLOCK), Some(MesiState::S));
    assert_eq!(b.l1s[1].state_of(BLOCK), Some(MesiState::S));
    assert_eq!(b.bank.stats.forwards_sent, 1);

    // Core 1 now writes: core 0's S copy must be invalidated.
    assert_eq!(b.access(1, BLOCK, true, 3), AccessOutcome::Miss);
    let retired = b.settle();
    assert_eq!(retired[1], vec![3]);
    assert_eq!(b.l1s[0].state_of(BLOCK), None, "sharer invalidated");
    assert_eq!(b.l1s[1].state_of(BLOCK), Some(MesiState::M));
    assert!(b.bank.stats.invalidations_sent >= 1);
}

#[test]
fn ping_pong_ownership_generates_home_writebacks() {
    let mut b = Bench::new();
    const BLOCK: u64 = 0x8000;
    let mut token = 0;
    for round in 0..6 {
        let writer = round % 2;
        token += 1;
        b.access(writer, BLOCK, true, token);
        let retired = b.settle();
        assert!(
            retired[writer].contains(&token),
            "round {round}: writer {writer} must retire"
        );
        assert_eq!(b.l1s[writer].state_of(BLOCK), Some(MesiState::M));
        assert_eq!(b.l1s[1 - writer].state_of(BLOCK), None);
    }
    // Each ownership handoff funnels the dirty block through the home:
    // five handoffs -> five FwdGetM + five data writebacks.
    assert_eq!(b.bank.stats.forwards_sent, 5);
    assert!(
        b.bank.timing().writes >= 5,
        "owner data is written into the STT array"
    );
}

#[test]
fn full_stack_multithreaded_produces_all_coherence_event_types() {
    let p = table3::by_name("sclust").unwrap();
    let mut cfg = Scenario::SttRam64Tsb.config();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 10_000;
    let cores = cfg.cores();
    let w = Workload {
        name: "sclust".into(),
        apps: vec![p; cores],
    };
    let mut sys = System::new(cfg, &w, DriveMode::FullStack);
    let m = sys.run();
    assert!(m.instruction_throughput() > 0.5);

    let inv: u64 = sys.banks().iter().map(|b| b.stats.invalidations_sent).sum();
    let fwd: u64 = sys.banks().iter().map(|b| b.stats.forwards_sent).sum();
    let fetches: u64 = sys.banks().iter().map(|b| b.stats.fetches).sum();
    assert!(fetches > 0, "cold misses fetch from memory");
    assert!(m.bank_writes > 0, "memory fills are STT-RAM array writes");
    // A cold-start window is DRAM-bound, so dirty L1 evictions (PutM)
    // barely appear yet; ownership handoffs and home writebacks are
    // asserted precisely by the message-level bench tests above. Here
    // we check that cross-core interaction exists at all.
    assert!(
        inv + fwd > 0,
        "shared data produces invalidations or forwards"
    );
}

#[test]
fn multiprogrammed_full_stack_has_no_cross_core_coherence() {
    // SPEC copies use private address spaces: no sharing, hence no
    // owner forwards.
    let p = table3::by_name("sjeng").unwrap();
    let mut cfg = Scenario::SttRam64Tsb.config();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 6_000;
    let cores = cfg.cores();
    let w = Workload {
        name: "sjeng".into(),
        apps: vec![p; cores],
    };
    let mut sys = System::new(cfg, &w, DriveMode::FullStack);
    sys.run();
    let fwd: u64 = sys.banks().iter().map(|b| b.stats.forwards_sent).sum();
    assert_eq!(fwd, 0, "private working sets never forward");
}

#[test]
fn l1_states_follow_mesi() {
    let cfg = MemConfig::default();
    let mut l1 = L1Cache::new(CoreId::new(0), &cfg, 64);
    l1.access(0x5000, false, 1);
    l1.handle(L1In::Data {
        block: 0x5000,
        exclusive: true,
    });
    assert_eq!(l1.state_of(0x5000), Some(MesiState::E));
    let (o, msgs) = l1.access(0x5000, true, 2);
    assert_eq!(o, AccessOutcome::Hit);
    assert!(msgs.is_empty());
    assert_eq!(l1.state_of(0x5000), Some(MesiState::M));
}
