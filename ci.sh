#!/usr/bin/env bash
# CI gate: tier-1 build+test, formatting, lints, the audited
# conformance leg, a sweep determinism smoke test (SNOC_THREADS must
# not change a repro binary's stdout), a partitioned-stepper smoke
# (SNOC_SHARDS=4 must match the serial stepper byte for byte), a
# strict-CLI check (a typo'd flag must fail without touching the
# checked-in baseline), a sweep-cache leg (a warm rerun must be
# byte-identical, cache-served, and at least 2x faster), a perf smoke
# gated against the tracked baseline, a telemetry smoke, the audited
# fault campaign plus a repro-faults smoke, a repro-scaling smoke, a
# snoc-serve smoke (daemon simulates a cell once, serves the repeat
# from cache, dedups an identical resubmission, and shuts down
# cleanly), a byte-identity leg (every legacy results/ file must
# regenerate exactly under the generalized geometry code), and an
# optional coverage floor.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: tests =="
cargo test -q

echo "== formatting =="
cargo fmt --all -- --check

echo "== lints: clippy, warnings are errors =="
cargo clippy --all-targets -- -D warnings

echo "== audit: every experiment invariant-clean at quick scale =="
cargo test --release -q -p snoc-core --test audit

echo "== sweep smoke: SNOC_THREADS=1 vs 4 stdout must be identical =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
export SNOC_PROGRESS=0 SNOC_RESULTS_DIR="$tmp/results"
SNOC_THREADS=1 cargo run --release -q -p snoc-bench --bin repro-fig3 -- --quick \
    >"$tmp/t1.out" 2>/dev/null
SNOC_THREADS=4 cargo run --release -q -p snoc-bench --bin repro-fig3 -- --quick \
    >"$tmp/t4.out" 2>/dev/null
diff -u "$tmp/t1.out" "$tmp/t4.out"
test -s "$tmp/t1.out"
echo "ok: identical across thread counts"

echo "== shard smoke: SNOC_SHARDS=4 stdout must match the serial stepper =="
SNOC_SHARDS=4 cargo run --release -q -p snoc-bench --bin repro-fig3 -- --quick \
    >"$tmp/s4.out" 2>/dev/null
diff -u "$tmp/t1.out" "$tmp/s4.out"
echo "ok: identical across shard counts"

echo "== sweep cache: warm rerun byte-identical, cache-served, and 2x faster =="
export SNOC_CACHE_DIR="$tmp/cellcache"
t0=$(date +%s%N)
SNOC_PROGRESS=1 cargo run --release -q -p snoc-bench --bin repro-fig6 -- --quick \
    >"$tmp/cold.out" 2>"$tmp/cold.err"
t_cold=$(( $(date +%s%N) - t0 ))
t0=$(date +%s%N)
SNOC_PROGRESS=1 cargo run --release -q -p snoc-bench --bin repro-fig6 -- --quick \
    >"$tmp/warm.out" 2>"$tmp/warm.err"
t_warm=$(( $(date +%s%N) - t0 ))
unset SNOC_CACHE_DIR
diff -u "$tmp/cold.out" "$tmp/warm.out"
test -s "$tmp/cold.out"
if ! grep -Eq '[1-9][0-9]* cached' "$tmp/warm.err"; then
    echo "error: warm rerun reported no cache hits"
    cat "$tmp/warm.err"
    exit 1
fi
if [ $((t_warm * 2)) -gt "$t_cold" ]; then
    echo "error: warm rerun (${t_warm} ns) not 2x faster than cold (${t_cold} ns)"
    exit 1
fi
echo "ok: warm rerun identical, served from cache, $((t_cold / t_warm))x faster"

echo "== shard conformance: fingerprints across SNOC_SHARDS, audited and faulted =="
cargo test --release -q -p snoc-core --test determinism

echo "== strict CLI: a typo'd flag must fail before any file is written =="
baseline_hash="$(sha256sum BENCH_hotpath.json)"
if cargo run --release -q -p snoc-bench --bin repro-perf -- --asert-within 8 \
    >/dev/null 2>&1; then
    echo "error: repro-perf accepted an unknown flag"
    exit 1
fi
echo "$baseline_hash" | sha256sum -c --quiet
if cargo run --release -q -p snoc-bench --bin snoc-serve -- \
    --socket "$tmp/never.sock" --requets '{"op":"ping"}' >/dev/null 2>&1; then
    echo "error: snoc-serve accepted an unknown flag"
    exit 1
fi
if [ -e "$tmp/never.sock" ]; then
    echo "error: snoc-serve touched its socket before rejecting the flag"
    exit 1
fi
echo "ok: unknown flags rejected, baseline untouched"

echo "== perf gate: repro-perf within 8% of the tracked baseline =="
# Full measurement budget, not --smoke: best-vs-best over a ~6 s
# window is stable on a noisy single-core box, where a 120 ms smoke
# window flakes by 10-20% run to run.
SNOC_BENCH_BASELINE=BENCH_hotpath.json \
    cargo run --release -q -p snoc-bench --bin repro-perf -- \
    --out "$tmp/bench.json" --assert-within 8 >/dev/null
grep -q '"kernels/network_step"' "$tmp/bench.json"

echo "== telemetry smoke: repro-telemetry writes heatmaps and a trace =="
cargo run --release -q -p snoc-bench --bin repro-telemetry -- --smoke \
    >/dev/null 2>&1
test -s "$tmp/results/telemetry/fig6_util_heatmap.csv"
test -s "$tmp/results/telemetry/fig6_hold_heatmap.csv"
test -s "$tmp/results/telemetry/fig6_latency_hist.csv"
test -s "$tmp/results/telemetry/fig6_trace.jsonl"

echo "== faults: audited campaign conservation-clean and deterministic =="
cargo test --release -q -p snoc-core --test faults

echo "== faults smoke: repro-faults writes the campaign table =="
cargo run --release -q -p snoc-bench --bin repro-faults -- --smoke \
    >/dev/null 2>&1
test -s "$tmp/results/faults/fault_campaign.txt"
test -s "$tmp/results/faults/fault_campaign.csv"

echo "== scaling smoke: repro-scaling writes the study table =="
cargo run --release -q -p snoc-bench --bin repro-scaling -- --smoke \
    >/dev/null 2>&1
test -s "$tmp/results/scaling/scaling_study.txt"
test -s "$tmp/results/scaling/scaling_study.csv"

echo "== serve smoke: one simulation, one cache hit, one dedup, clean shutdown =="
serve_sock="$tmp/snoc-serve.sock"
serve_cell='{"label":"ci","scenario":"MRAM-4TSB-WB","app":"sap","warmup":100,"measure":400}'
cargo run --release -q -p snoc-bench --bin snoc-serve -- --socket "$serve_sock" \
    2>"$tmp/serve.err" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -S "$serve_sock" ] && break
    sleep 0.1
done
cargo run --release -q -p snoc-bench --bin snoc-serve -- \
    --socket "$serve_sock" --ping >/dev/null
first="$(cargo run --release -q -p snoc-bench --bin snoc-serve -- \
    --socket "$serve_sock" \
    --request "{\"op\":\"submit\",\"wait\":true,\"cells\":[$serve_cell]}")"
echo "$first" | grep -q '"deduped":false'
echo "$first" | grep -q '"cached":false'
# The same cell under a new label is a *new* job (labels are part of
# job identity) but must be served from the shared cell cache.
serve_relabel="${serve_cell/\"ci\"/\"ci-relabel\"}"
second="$(cargo run --release -q -p snoc-bench --bin snoc-serve -- \
    --socket "$serve_sock" \
    --request "{\"op\":\"submit\",\"wait\":true,\"cells\":[$serve_relabel]}")"
echo "$second" | grep -q '"deduped":false'
echo "$second" | grep -q '"cached":true'
echo "$second" | grep -q '"cache_hits":1'
# An identical resubmission is not even a new job.
third="$(cargo run --release -q -p snoc-bench --bin snoc-serve -- \
    --socket "$serve_sock" \
    --request "{\"op\":\"submit\",\"wait\":true,\"cells\":[$serve_cell]}")"
echo "$third" | grep -q '"deduped":true'
cargo run --release -q -p snoc-bench --bin snoc-serve -- \
    --socket "$serve_sock" --shutdown >/dev/null
wait "$serve_pid"
if [ -e "$serve_sock" ]; then
    echo "error: snoc-serve left its socket file behind"
    exit 1
fi
echo "ok: serve smoke passed"

echo "== byte identity: legacy results regenerate exactly (full scale, cache off) =="
for exp in table2 table3 fig3 fig6 fig7 fig8 fig9 fig10 fig12 fig13 fig14 ablations; do
    cargo run --release -q -p snoc-bench --bin "repro-$exp" -- \
        >/dev/null 2>&1
    diff -u "results/$exp.txt" "$tmp/results/$exp.txt"
    diff -u "results/$exp.csv" "$tmp/results/$exp.csv"
done
echo "ok: all 24 legacy result files byte-identical"

echo "== coverage: line floor over snoc-noc incl. workspace (gated on tool presence) =="
if cargo llvm-cov --version >/dev/null 2>&1; then
    # 72: raised from 70 when the SoA workspace module landed with its
    # own unit + differential test coverage.
    cargo llvm-cov -q -p snoc-noc --fail-under-lines 72 --summary-only
else
    echo "skipped: cargo-llvm-cov is not installed" \
        "(cargo install cargo-llvm-cov to enable this leg)"
fi

echo "== ci passed =="
