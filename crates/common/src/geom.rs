//! Mesh geometry for the two stacked layers.
//!
//! Both dies are laid out as a `width x height` mesh (8x8 in the paper).
//! A position on the chip is a [`Coord`]: an `(x, y)` pair plus the
//! [`Layer`]. `x` grows eastward (the paper's X direction, along a row),
//! `y` grows northward (the Y direction, along a column); node ids grow
//! row-major, so node `y * width + x` matches the paper's Figure 4
//! numbering with node 0 at the south-west corner.

use crate::config::TsbPlacement;
use crate::ids::{NodeId, RegionId};
use std::fmt;

/// Which die a coordinate refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// The top die: 64 cores with their private L1 caches.
    Core,
    /// The bottom die: 64 shared L2 banks plus the memory controllers.
    Cache,
}

impl Layer {
    /// The other layer.
    pub fn opposite(self) -> Layer {
        match self {
            Layer::Core => Layer::Cache,
            Layer::Cache => Layer::Core,
        }
    }

    /// `true` for [`Layer::Cache`].
    pub fn is_cache(self) -> bool {
        matches!(self, Layer::Cache)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Core => f.write_str("core"),
            Layer::Cache => f.write_str("cache"),
        }
    }
}

/// A position on the chip: mesh coordinates plus the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (paper's X direction).
    pub x: u8,
    /// Row (paper's Y direction).
    pub y: u8,
    /// Which die.
    pub layer: Layer,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: u8, y: u8, layer: Layer) -> Self {
        Self { x, y, layer }
    }

    /// The same (x, y) position on the other die.
    pub fn through_via(self) -> Coord {
        Coord {
            layer: self.layer.opposite(),
            ..self
        }
    }

    /// Manhattan distance within a layer, ignoring the Z dimension.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})@{}", self.x, self.y, self.layer)
    }
}

/// One hop direction in the 3D mesh, also used to index router ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// +x within a layer.
    East,
    /// -x within a layer.
    West,
    /// +y within a layer.
    North,
    /// -y within a layer.
    South,
    /// Core layer -> cache layer (through a TSV/TSB).
    Down,
    /// Cache layer -> core layer (through a TSV/TSB).
    Up,
    /// Into or out of the locally attached core / bank / controller.
    Local,
}

impl Direction {
    /// All seven port directions, in port-index order.
    pub const ALL: [Direction; 7] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
        Direction::Down,
        Direction::Up,
        Direction::Local,
    ];

    /// The port index used by routers for this direction.
    pub const fn port(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::Down => 4,
            Direction::Up => 5,
            Direction::Local => 6,
        }
    }

    /// The direction a flit travelling this way arrives *from* at the
    /// next router (e.g. a flit sent East arrives on the West port).
    pub fn arrival_port(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::Down => Direction::Up,
            Direction::Up => Direction::Down,
            Direction::Local => Direction::Local,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::West => "W",
            Direction::North => "N",
            Direction::South => "S",
            Direction::Down => "D",
            Direction::Up => "U",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// The dimensions of one mesh layer and the id<->coordinate mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    width: u8,
    height: u8,
}

impl Mesh {
    /// Creates a mesh of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the node count exceeds
    /// `u16::MAX`.
    pub fn new(width: u8, height: u8) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        assert!(
            (width as usize) * (height as usize) <= u16::MAX as usize,
            "mesh too large"
        );
        Self { width, height }
    }

    /// Mesh width (columns).
    pub fn width(self) -> u8 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(self) -> u8 {
        self.height
    }

    /// Number of nodes per layer.
    pub fn nodes_per_layer(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The coordinate of a layer-local node id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this mesh.
    pub fn coord(self, node: NodeId, layer: Layer) -> Coord {
        let idx = node.index();
        assert!(idx < self.nodes_per_layer(), "node {node} out of range");
        Coord {
            x: (idx % self.width as usize) as u8,
            y: (idx / self.width as usize) as u8,
            layer,
        }
    }

    /// The layer-local node id at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the mesh.
    pub fn node(self, coord: Coord) -> NodeId {
        assert!(
            coord.x < self.width && coord.y < self.height,
            "coord out of range"
        );
        NodeId::new(coord.y as u16 * self.width as u16 + coord.x as u16)
    }

    /// The neighbouring coordinate one hop in `dir`, or `None` at the
    /// mesh / layer boundary. [`Direction::Local`] has no neighbour.
    pub fn neighbour(self, coord: Coord, dir: Direction) -> Option<Coord> {
        match dir {
            Direction::East if coord.x + 1 < self.width => Some(Coord {
                x: coord.x + 1,
                ..coord
            }),
            Direction::West if coord.x > 0 => Some(Coord {
                x: coord.x - 1,
                ..coord
            }),
            Direction::North if coord.y + 1 < self.height => Some(Coord {
                y: coord.y + 1,
                ..coord
            }),
            Direction::South if coord.y > 0 => Some(Coord {
                y: coord.y - 1,
                ..coord
            }),
            Direction::Down if coord.layer == Layer::Core => Some(coord.through_via()),
            Direction::Up if coord.layer == Layer::Cache => Some(coord.through_via()),
            _ => None,
        }
    }

    /// Iterates over all layer-local node ids.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes_per_layer() as u16).map(NodeId::new)
    }

    /// The first X-then-Y step from `from` towards `to` within one
    /// layer, or `None` if already there.
    ///
    /// This is the paper's dimension-ordered X-Y routing function.
    pub fn xy_step(self, from: Coord, to: Coord) -> Option<Direction> {
        debug_assert_eq!(from.layer, to.layer, "xy_step is intra-layer");
        if from.x < to.x {
            Some(Direction::East)
        } else if from.x > to.x {
            Some(Direction::West)
        } else if from.y < to.y {
            Some(Direction::North)
        } else if from.y > to.y {
            Some(Direction::South)
        } else {
            None
        }
    }

    /// The full X-Y path from `from` to `to` (exclusive of `from`,
    /// inclusive of `to`), within one layer.
    pub fn xy_path(self, from: Coord, to: Coord) -> Vec<Coord> {
        let mut path = Vec::with_capacity(from.manhattan(to) as usize);
        let mut cur = from;
        while let Some(dir) = self.xy_step(cur, to) {
            cur = self.neighbour(cur, dir).expect("xy path stays in mesh");
            path.push(cur);
        }
        path
    }
}

/// The complete chip geometry of one configuration: the per-layer
/// mesh, the region tiling of the cache die, the resolved TSB
/// placement list and the cache-stack depth.
///
/// Historically the 8x8 / 64-bank / 4-region design point was baked
/// into the layers above as constants; `Geometry` is the one place
/// those numbers are derived now. The mesh and region count come from
/// [`crate::config::SystemConfig`], the `(tiles_x, tiles_y)`
/// arrangement and the per-region TSB nodes are computed here, and
/// everything downstream (region maps, parent maps, routing tables,
/// workspace lane counts) reads the derived values.
///
/// The paper's fixed arrangements for 1/2/4/8/16 regions are kept
/// verbatim whenever they tile the mesh, so the 8x8 design points
/// resolve to exactly the historical tiling; other region counts fall
/// back to the divisor factorization with the squarest tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    mesh: Mesh,
    regions: usize,
    placement: TsbPlacement,
    cache_layers: usize,
    tiles_x: usize,
    tiles_y: usize,
    tsbs: Vec<NodeId>,
}

impl Geometry {
    /// Resolves the tiling and TSB placement for `regions` regions on
    /// `mesh` with `cache_layers` stacked cache dies.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the mesh cannot be tiled
    /// into `regions` equal rectangles or `cache_layers` is zero.
    pub fn try_new(
        mesh: Mesh,
        regions: usize,
        placement: TsbPlacement,
        cache_layers: usize,
    ) -> Result<Self, String> {
        if regions == 0 {
            return Err("need at least one region".into());
        }
        if cache_layers == 0 {
            return Err("need at least one cache layer".into());
        }
        let (tiles_x, tiles_y) = Self::tile_grid(mesh, regions)?;
        let tile_w = (mesh.width() as usize / tiles_x) as u8;
        let tile_h = (mesh.height() as usize / tiles_y) as u8;
        let tsbs = (0..regions)
            .map(|r| {
                let tx = (r % tiles_x) as u8;
                let ty = (r / tiles_x) as u8;
                Self::tsb_position(mesh, tile_w, tile_h, tx, ty, placement)
            })
            .collect();
        Ok(Self {
            mesh,
            regions,
            placement,
            cache_layers,
            tiles_x,
            tiles_y,
            tsbs,
        })
    }

    /// Resolves the tiling and TSB placement, panicking on an
    /// untileable combination (see [`Geometry::try_new`]).
    ///
    /// # Panics
    ///
    /// Panics when [`Geometry::try_new`] would return an error.
    pub fn new(mesh: Mesh, regions: usize, placement: TsbPlacement, cache_layers: usize) -> Self {
        match Self::try_new(mesh, regions, placement, cache_layers) {
            Ok(g) => g,
            Err(e) => panic!("invalid geometry: {e}"),
        }
    }

    /// The `(columns, rows)` arrangement of region tiles: the paper's
    /// fixed table when it divides the mesh, otherwise the divisor
    /// factorization whose tiles are closest to square (ties broken
    /// towards more columns).
    fn tile_grid(mesh: Mesh, regions: usize) -> Result<(usize, usize), String> {
        let w = mesh.width() as usize;
        let h = mesh.height() as usize;
        let legacy = match regions {
            1 => Some((1, 1)),
            2 => Some((2, 1)),
            4 => Some((2, 2)),
            8 => Some((2, 4)),
            16 => Some((4, 4)),
            _ => None,
        };
        if let Some((tx, ty)) = legacy {
            if w.is_multiple_of(tx) && h.is_multiple_of(ty) {
                return Ok((tx, ty));
            }
        }
        let mut best: Option<(usize, usize, usize)> = None;
        for tx in 1..=regions.min(w) {
            if !regions.is_multiple_of(tx) {
                continue;
            }
            let ty = regions / tx;
            if !w.is_multiple_of(tx) || !h.is_multiple_of(ty) {
                continue;
            }
            let skew = (w / tx).abs_diff(h / ty);
            // Strict `<` keeps the first (widest-tile) arrangement on
            // ties, deterministically.
            if best.is_none_or(|(s, _, _)| skew < s) {
                best = Some((skew, tx, ty));
            }
        }
        best.map(|(_, tx, ty)| (tx, ty))
            .ok_or_else(|| format!("mesh {w}x{h} cannot be tiled into {regions} equal regions"))
    }

    /// The TSB node of the tile at `(tx, ty)` under `placement` —
    /// the innermost tile corner (towards the mesh centre), with the
    /// staggered rule spreading TSB columns across tiles of one column.
    fn tsb_position(
        mesh: Mesh,
        tile_w: u8,
        tile_h: u8,
        tx: u8,
        ty: u8,
        placement: TsbPlacement,
    ) -> NodeId {
        let x0 = tx * tile_w;
        let y0 = ty * tile_h;
        let x1 = x0 + tile_w - 1;
        let y1 = y0 + tile_h - 1;
        // The "innermost" corner: the tile corner nearest the mesh
        // centre (between columns w/2-1 and w/2).
        let cx2 = mesh.width() as i32 - 1; // 2*centre_x
        let cy2 = mesh.height() as i32 - 1;
        let inner_x = if (2 * x0 as i32 - cx2).abs() <= (2 * x1 as i32 - cx2).abs() {
            x0
        } else {
            x1
        };
        let inner_y = if (2 * y0 as i32 - cy2).abs() <= (2 * y1 as i32 - cy2).abs() {
            y0
        } else {
            y1
        };
        let (x, y) = match placement {
            TsbPlacement::Corner => (inner_x, inner_y),
            TsbPlacement::Staggered => {
                // Spread TSBs across distinct columns so Y-direction
                // flows towards different TSBs do not collide in the
                // core layer (Figure 11 (b)/(c)).
                let x = x0 + (ty % tile_w.max(1));
                (x, inner_y)
            }
        };
        mesh.node(Coord::new(x, y, Layer::Cache))
    }

    /// The per-layer mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// The TSB placement rule in use.
    pub fn placement(&self) -> TsbPlacement {
        self.placement
    }

    /// Number of stacked cache dies sharing the cache-layer mesh.
    pub fn cache_layers(&self) -> usize {
        self.cache_layers
    }

    /// Number of cores (= nodes per layer).
    pub fn cores(&self) -> usize {
        self.mesh.nodes_per_layer()
    }

    /// Number of L2 banks (= nodes per layer; deeper stack layers add
    /// capacity to each bank, not bank count).
    pub fn banks(&self) -> usize {
        self.mesh.nodes_per_layer()
    }

    /// Region tile columns.
    pub fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Region tile rows.
    pub fn tiles_y(&self) -> usize {
        self.tiles_y
    }

    /// Tile width in nodes.
    pub fn tile_width(&self) -> u8 {
        (self.mesh.width() as usize / self.tiles_x) as u8
    }

    /// Tile height in nodes.
    pub fn tile_height(&self) -> u8 {
        (self.mesh.height() as usize / self.tiles_y) as u8
    }

    /// The region containing a cache-layer node.
    pub fn region_of(&self, node: NodeId) -> RegionId {
        let c = self.mesh.coord(node, Layer::Cache);
        let tx = (c.x / self.tile_width()) as usize;
        let ty = (c.y / self.tile_height()) as usize;
        RegionId::new((ty * self.tiles_x + tx) as u16)
    }

    /// The resolved TSB node of every region, in region order.
    pub fn tsb_nodes(&self) -> &[NodeId] {
        &self.tsbs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn node_coord_round_trip() {
        let m = mesh();
        for id in m.nodes() {
            let c = m.coord(id, Layer::Cache);
            assert_eq!(m.node(c), id);
        }
    }

    #[test]
    fn paper_node_91_is_row3_col3_of_cache_layer() {
        // Paper chip node 91 = cache-layer node 27 = (x=3, y=3).
        let m = mesh();
        let c = m.coord(NodeId::new(27), Layer::Cache);
        assert_eq!((c.x, c.y), (3, 3));
    }

    #[test]
    fn neighbours_respect_boundaries() {
        let m = mesh();
        let sw = Coord::new(0, 0, Layer::Core);
        assert_eq!(m.neighbour(sw, Direction::West), None);
        assert_eq!(m.neighbour(sw, Direction::South), None);
        assert_eq!(
            m.neighbour(sw, Direction::Up),
            None,
            "core layer is the top die"
        );
        assert_eq!(
            m.neighbour(sw, Direction::Down),
            Some(Coord::new(0, 0, Layer::Cache))
        );
        let ne = Coord::new(7, 7, Layer::Cache);
        assert_eq!(m.neighbour(ne, Direction::East), None);
        assert_eq!(m.neighbour(ne, Direction::North), None);
        assert_eq!(m.neighbour(ne, Direction::Down), None);
        assert_eq!(
            m.neighbour(ne, Direction::Up),
            Some(Coord::new(7, 7, Layer::Core))
        );
    }

    #[test]
    fn xy_path_goes_x_first() {
        let m = mesh();
        // Paper example: requests entering region 0 at node 91 (3,3)
        // reach bank 74 (chip) = node 10 = (2,1) via 90, 82, 74.
        let from = m.coord(NodeId::new(27), Layer::Cache);
        let to = m.coord(NodeId::new(10), Layer::Cache);
        let path: Vec<_> = m.xy_path(from, to).iter().map(|&c| m.node(c)).collect();
        assert_eq!(
            path,
            vec![NodeId::new(26), NodeId::new(18), NodeId::new(10)]
        );
    }

    #[test]
    fn xy_step_is_none_at_destination() {
        let m = mesh();
        let c = Coord::new(4, 4, Layer::Core);
        assert_eq!(m.xy_step(c, c), None);
    }

    #[test]
    fn arrival_ports_invert_directions() {
        for dir in Direction::ALL {
            if dir == Direction::Local {
                continue;
            }
            assert_eq!(dir.arrival_port().arrival_port(), dir);
        }
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(0, 0, Layer::Core);
        let b = Coord::new(7, 7, Layer::Core);
        assert_eq!(a.manhattan(b), 14);
        assert_eq!(b.manhattan(a), 14);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_of_out_of_range_node_panics() {
        mesh().coord(NodeId::new(64), Layer::Core);
    }

    #[test]
    fn geometry_pins_the_paper_design_point() {
        // 8x8, 4 regions, corner placement: the TSBs sit at the four
        // innermost tile corners around the mesh centre.
        let g = Geometry::new(mesh(), 4, TsbPlacement::Corner, 1);
        assert_eq!((g.tiles_x(), g.tiles_y()), (2, 2));
        assert_eq!((g.tile_width(), g.tile_height()), (4, 4));
        let tsbs: Vec<u16> = g.tsb_nodes().iter().map(|n| n.index() as u16).collect();
        assert_eq!(tsbs, vec![27, 28, 35, 36]);
        assert_eq!(g.banks(), 64);
        assert_eq!(g.region_of(NodeId::new(0)).index(), 0);
        assert_eq!(g.region_of(NodeId::new(63)).index(), 3);
    }

    #[test]
    fn geometry_legacy_tilings_hold_where_they_divide() {
        for (k, tiles) in [(1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (8, (2, 4))] {
            let g = Geometry::new(mesh(), k, TsbPlacement::Corner, 1);
            assert_eq!((g.tiles_x(), g.tiles_y()), tiles, "k={k}");
        }
        let g = Geometry::new(Mesh::new(16, 16), 16, TsbPlacement::Corner, 1);
        assert_eq!((g.tiles_x(), g.tiles_y()), (4, 4));
    }

    #[test]
    fn geometry_falls_back_when_legacy_tiling_does_not_divide() {
        // K=6 has no legacy table entry: on 6x4 the squarest divisor
        // factorization is 3x2 columns of 2x2 tiles.
        let g = Geometry::new(Mesh::new(6, 4), 6, TsbPlacement::Corner, 1);
        assert_eq!((g.tiles_x(), g.tiles_y()), (3, 2));
        assert_eq!((g.tile_width(), g.tile_height()), (2, 2));
        // The legacy entry is kept whenever it divides, even away from
        // 8x8 (8x4 / K=8 -> legacy 2x4 of 4x1 tiles).
        let g = Geometry::new(Mesh::new(8, 4), 8, TsbPlacement::Corner, 1);
        assert_eq!((g.tiles_x(), g.tiles_y()), (2, 4));
        // K=8 on 4x6: legacy 2x4 needs height%4==0 and fails; the
        // fallback lands on 4x2 columns of 1x3 tiles.
        let g = Geometry::new(Mesh::new(4, 6), 8, TsbPlacement::Corner, 1);
        assert_eq!((g.tiles_x(), g.tiles_y()), (4, 2));
        // K=8 on 6x6 has no valid tiling at all (no tx|6 with ty|6).
        assert!(Geometry::try_new(Mesh::new(6, 6), 8, TsbPlacement::Corner, 1).is_err());
        assert!(Geometry::try_new(mesh(), 5, TsbPlacement::Corner, 1).is_err());
        assert!(Geometry::try_new(mesh(), 4, TsbPlacement::Corner, 0).is_err());
        assert!(Geometry::try_new(mesh(), 0, TsbPlacement::Corner, 1).is_err());
    }

    #[test]
    fn geometry_regions_partition_the_mesh() {
        for (w, h, k) in [(8u8, 8u8, 4usize), (16, 16, 16), (4, 8, 4), (6, 6, 9)] {
            let m = Mesh::new(w, h);
            let g = Geometry::new(m, k, TsbPlacement::Staggered, 1);
            let mut counts = vec![0usize; k];
            for n in 0..m.nodes_per_layer() {
                counts[g.region_of(NodeId::new(n as u16)).index()] += 1;
            }
            assert!(
                counts.iter().all(|&c| c == m.nodes_per_layer() / k),
                "{w}x{h} k={k}: {counts:?}"
            );
            for (r, &tsb) in g.tsb_nodes().iter().enumerate() {
                assert_eq!(g.region_of(tsb).index(), r, "{w}x{h} k={k}");
            }
        }
    }
}
