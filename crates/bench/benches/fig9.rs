//! Criterion bench for the paper's Figure 9: prints the quick-scale
//! case studies once, then times one Case-2 mix run.
use criterion::{criterion_group, criterion_main, Criterion};
use snoc_core::experiments::{fig9, Scale};
use snoc_core::scenario::Scenario;
use snoc_core::system::{DriveMode, System};
use snoc_workload::mixes;

fn bench(c: &mut Criterion) {
    println!("{}", fig9::run(Scale::Quick));
    let w = mixes::case2(64);
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("run/case2/SttRam4TsbWb", |b| {
        b.iter(|| {
            System::new(Scale::Quick.apply(Scenario::SttRam4TsbWb.config()), &w, DriveMode::Profile)
                .run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
