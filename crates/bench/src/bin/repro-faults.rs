//! Fault-injection campaign around the paper's headline Figure 6 cell.
//!
//! Sweeps fault-rate multiplier x scheme for the `sap` server workload
//! (the headline fig6 configuration is `MRAM-4TSB-WB`; the other
//! region-TSB schemes ride along so the cost of degraded mode can be
//! compared across arbitration policies). Each scheme runs:
//!
//! * `off`  — fault injection disabled (the clean baseline);
//! * `x1`, `x4`, `x16` — the default [`FaultPlan`] per-cycle rates
//!   scaled by that factor (transient TSB/link/port outages plus bank
//!   stuck-busy and dropped-ack episodes);
//! * `kill` — default rates plus a permanent TSB death mid-run, which
//!   re-homes the victim region onto the nearest surviving TSB.
//!
//! Cells run **sequentially** through [`System::enable_faults`] — the
//! campaign is configured programmatically, so no environment-variable
//! races and byte-identical reruns per seed. Results land under
//! `<SNOC_RESULTS_DIR|results>/faults/`.
//!
//! `--smoke` (or `--quick`) shrinks the grid to the headline scheme
//! with `off`/`x4`/`kill` for CI.

use snoc_core::experiments::Scale;
use snoc_core::report::{self, Rows};
use snoc_core::scenario::Scenario;
use snoc_core::system::System;
use snoc_noc::FaultPlan;
use snoc_workload::table3 as t3;
use std::fmt;

/// One campaign column: how the default plan is perturbed.
#[derive(Clone, Copy)]
enum Campaign {
    Off,
    Rates(f64),
    Kill,
}

impl Campaign {
    fn label(self) -> String {
        match self {
            Campaign::Off => "off".into(),
            Campaign::Rates(m) => format!("x{m:.0}"),
            Campaign::Kill => "kill".into(),
        }
    }

    fn plan(self) -> Option<FaultPlan> {
        let base = FaultPlan::default();
        match self {
            Campaign::Off => None,
            Campaign::Rates(m) => Some(FaultPlan {
                tsb_rate: base.tsb_rate * m,
                link_rate: base.link_rate * m,
                port_rate: base.port_rate * m,
                bank_rate: base.bank_rate * m,
                ..base
            }),
            // Default transient rates plus a permanent TSB death early
            // in the measurement window.
            Campaign::Kill => Some(FaultPlan {
                kill_tsb_at: Some(1_000),
                ..base
            }),
        }
    }
}

struct Row {
    label: String,
    values: Vec<f64>,
}

struct FaultSweep {
    rows: Vec<Row>,
}

const COLUMNS: [&str; 9] = [
    "throughput",
    "uncore_lat",
    "injected",
    "dropped",
    "dropped_acks",
    "retries",
    "abandoned",
    "rehomed",
    "degraded_cyc",
];

impl Rows for FaultSweep {
    fn header(&self) -> Vec<String> {
        COLUMNS.map(String::from).to_vec()
    }
    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        self.rows
            .iter()
            .map(|r| (r.label.clone(), r.values.clone()))
            .collect()
    }
}

impl fmt::Display for FaultSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fault campaign: headline fig6 cell (sap) under scaled fault rates"
        )?;
        write!(f, "{:>18}", "cell")?;
        for c in COLUMNS {
            write!(f, " {c:>12}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:>18}", r.label)?;
            for v in &r.values {
                write!(f, " {v:>12.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn main() {
    let smoke = !snoc_bench::strict_flags(&["--smoke", "--quick"]).is_empty();
    let schemes: &[Scenario] = if smoke {
        &[Scenario::SttRam4TsbWb]
    } else {
        &[
            Scenario::SttRam4Tsb,
            Scenario::SttRam4TsbSs,
            Scenario::SttRam4TsbRca,
            Scenario::SttRam4TsbWb,
        ]
    };
    let campaigns: &[Campaign] = if smoke {
        &[Campaign::Off, Campaign::Rates(4.0), Campaign::Kill]
    } else {
        &[
            Campaign::Off,
            Campaign::Rates(1.0),
            Campaign::Rates(4.0),
            Campaign::Rates(16.0),
            Campaign::Kill,
        ]
    };
    let app = t3::by_name("sap").expect("table 3 has sap");

    let mut rows = Vec::new();
    for &scheme in schemes {
        for &campaign in campaigns {
            let cfg = Scale::Quick.apply(scheme.config());
            let mut system = System::homogeneous(cfg, app);
            if let Some(plan) = campaign.plan() {
                system.enable_faults(plan);
            }
            let metrics = system.run();
            let s = metrics.faults.clone().unwrap_or_default();
            let label = format!("{}/{}", scheme.name(), campaign.label());
            eprintln!(
                "{label}: injected={} dropped={} retries={} rehomed={} degraded={}",
                s.injected(),
                s.dropped,
                s.retries,
                s.rehomed_regions,
                s.degraded_cycles
            );
            rows.push(Row {
                label,
                values: vec![
                    metrics.instruction_throughput(),
                    metrics.uncore_latency(),
                    s.injected() as f64,
                    s.dropped as f64,
                    s.dropped_acks as f64,
                    s.retries as f64,
                    s.abandoned as f64,
                    s.rehomed_regions as f64,
                    s.degraded_cycles as f64,
                ],
            });
        }
    }

    let result = FaultSweep { rows };
    println!("{result}");
    let base = std::env::var("SNOC_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let dir = format!("{base}/faults");
    match report::save(&dir, "fault_campaign", &result) {
        Ok((txt, csv)) => eprintln!("wrote {} and {}", txt.display(), csv.display()),
        Err(e) => {
            eprintln!("error: could not write results under {dir}: {e}");
            std::process::exit(1);
        }
    }
}
