//! Regenerates the paper's Figure 8 (uncore energy).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("fig8", &snoc_core::experiments::fig8::run(scale));
}
