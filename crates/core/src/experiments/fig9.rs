//! Figure 9: weighted speedup and instruction throughput for the
//! multiprogrammed case studies (Case-1, Case-2, and the aggregate of
//! the 32 Case-3 mixes), normalized to SRAM-64TSB.

use crate::experiments::{norm, Scale};
use crate::metrics::weighted_speedup;
use crate::scenario::Scenario;
use crate::system::{DriveMode, System};
use snoc_workload::mixes::{self, Workload};
use std::collections::HashMap;
use std::fmt;

/// Normalized (weighted speedup, instruction throughput) per scenario.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case label.
    pub name: String,
    /// One (WS, IT) pair per [`Scenario::ALL`] entry, normalized to
    /// the SRAM baseline.
    pub normalized: Vec<(f64, f64)>,
}

/// The figure: Case-1, Case-2, Case-3 aggregate.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// The three panels.
    pub cases: Vec<CaseResult>,
}

/// Caches each application's "alone" IPC per scenario (its standard
/// 64-copy solo run under the same configuration).
pub struct AloneCache {
    scale: Scale,
    cache: HashMap<(&'static str, usize), f64>,
}

impl AloneCache {
    /// Creates an empty cache.
    pub fn new(scale: Scale) -> Self {
        Self { scale, cache: HashMap::new() }
    }

    /// The IPC of one copy of `app` on an otherwise idle machine under
    /// scenario `sc` (Eq. 2's `IPC_alone`).
    pub fn alone_ipc(&mut self, app: &'static str, sc_idx: usize) -> f64 {
        if let Some(&v) = self.cache.get(&(app, sc_idx)) {
            return v;
        }
        let w = Workload::solo(app, 64).expect("known app");
        let cfg = self.scale.apply(Scenario::ALL[sc_idx].config());
        let m = System::new(cfg, &w, DriveMode::Profile).run();
        let v = m.ipc(0);
        self.cache.insert((app, sc_idx), v);
        v
    }
}

/// Raw (WS, IT) for one workload under one scenario.
pub fn measure(
    w: &Workload,
    sc_idx: usize,
    scale: Scale,
    alone: &mut AloneCache,
) -> (f64, f64) {
    let cfg = scale.apply(Scenario::ALL[sc_idx].config());
    let m = System::new(cfg, w, DriveMode::Profile).run();
    let apps = w.distinct();
    let shared: Vec<f64> =
        apps.iter().map(|p| m.ipc_of_cores(&w.cores_running(p.name))).collect();
    let alone_ipcs: Vec<f64> = apps.iter().map(|p| alone.alone_ipc(p.name, sc_idx)).collect();
    (weighted_speedup(&shared, &alone_ipcs), m.instruction_throughput())
}

fn case_result(
    name: &str,
    workloads: &[Workload],
    scale: Scale,
    alone: &mut AloneCache,
) -> CaseResult {
    let mut raw = vec![(0.0, 0.0); Scenario::ALL.len()];
    for w in workloads {
        for i in 0..Scenario::ALL.len() {
            let (ws, it) = measure(w, i, scale, alone);
            raw[i].0 += ws;
            raw[i].1 += it;
        }
    }
    let base = raw[0];
    let normalized =
        raw.iter().map(|&(ws, it)| (norm(ws, base.0), norm(it, base.1))).collect();
    CaseResult { name: name.to_string(), normalized }
}

/// Runs the three case studies.
pub fn run(scale: Scale) -> Fig9Result {
    let cores = 64;
    let mut alone = AloneCache::new(scale);
    let mut cases = Vec::new();
    cases.push(case_result("Case-1", &[mixes::case1(cores)], scale, &mut alone));
    cases.push(case_result("Case-2", &[mixes::case2(cores)], scale, &mut alone));
    let all3 = mixes::case3(cores, 0xC0FFEE);
    let subset: Vec<Workload> = match scale {
        Scale::Quick => all3.into_iter().step_by(8).collect(), // 4 mixes
        Scale::Full => all3,
    };
    cases.push(case_result("Case-3 (aggregate)", &subset, scale, &mut alone));
    Fig9Result { cases }
}

impl fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9: weighted speedup (WS) and instruction throughput (IT),\nnormalized to SRAM-64TSB"
        )?;
        for c in &self.cases {
            writeln!(f, "--- {} ---", c.name)?;
            write!(f, "{:4}", "")?;
            for sc in Scenario::ALL {
                write!(f, " {:>14}", sc.name())?;
            }
            writeln!(f)?;
            write!(f, "{:4}", "WS")?;
            for (ws, _) in &c.normalized {
                write!(f, " {:>14.3}", ws)?;
            }
            writeln!(f)?;
            write!(f, "{:4}", "IT")?;
            for (_, it) in &c.normalized {
                write!(f, " {:>14.3}", it)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case2_weighted_speedup_is_normalized() {
        let mut alone = AloneCache::new(Scale::Quick);
        let w = mixes::case2(64);
        let (ws, it) = measure(&w, 0, Scale::Quick, &mut alone);
        // Four applications: WS is bounded by 4 (and positive).
        assert!(ws > 0.5 && ws < 6.0, "ws {ws}");
        assert!(it > 0.0);
    }

    #[test]
    fn alone_cache_reuses_runs() {
        let mut alone = AloneCache::new(Scale::Quick);
        let a = alone.alone_ipc("lbm", 0);
        let b = alone.alone_ipc("lbm", 0);
        assert_eq!(a, b);
        assert_eq!(alone.cache.len(), 1);
    }
}
