//! Bench for the paper's fig13: prints the quick-scale reproduction
//! once, then times one representative simulation run on the
//! dependency-free harness.
use snoc_bench::harness;
use snoc_core::experiments::{fig13, Scale};
use snoc_core::scenario::Scenario;
use snoc_core::system::System;
use snoc_workload::table3 as t3;

fn main() {
    // Print the reproduced figure/table (quick scale) once.
    println!("{}", fig13::run(Scale::Quick));
    let app = t3::by_name("ferret").unwrap();
    harness::bench("fig13/run/ferret/SttRam4Tsb", || {
        System::homogeneous(Scale::Quick.apply(Scenario::SttRam4Tsb.config()), app).run()
    });
}
