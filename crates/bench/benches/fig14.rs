//! Criterion bench for the paper's Figure 14: prints the quick-scale
//! write-buffer comparison once, then times one BUFF-20 run.
use criterion::{criterion_group, criterion_main, Criterion};
use snoc_core::experiments::{fig14, Scale};
use snoc_core::scenario::buff20_config;
use snoc_core::system::System;
use snoc_workload::table3 as t3;

fn bench(c: &mut Criterion) {
    println!("{}", fig14::run(Scale::Quick));
    let app = t3::by_name("sclust").unwrap();
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("run/sclust/buff20", |b| {
        b.iter(|| System::homogeneous(Scale::Quick.apply(buff20_config()), app).run())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
