//! Per-parent busy-time bookkeeping for child banks (Section 3.5).
//!
//! Each parent router keeps, for every child bank, the predicted cycle
//! at which the bank finishes all work the parent has forwarded to it.
//! Because all requests to a child pass through its parent, this
//! prediction is exact up to network congestion — which the configured
//! estimator supplies.

use snoc_common::ids::BankId;
use snoc_common::Cycle;

/// Predicted busy horizon of the child banks managed by one parent.
///
/// Children are indexed once at construction (sorted ids + parallel
/// horizon vector) so the per-arbitration lookups are binary searches
/// rather than linear scans.
#[derive(Debug, Clone, Default)]
pub struct BusyTable {
    banks: Vec<BankId>,
    until: Vec<Cycle>,
}

impl BusyTable {
    /// Creates a table for the given children.
    pub fn new(children: impl IntoIterator<Item = BankId>) -> Self {
        let mut banks: Vec<BankId> = children.into_iter().collect();
        banks.sort_unstable();
        banks.dedup();
        let until = vec![0; banks.len()];
        Self { banks, until }
    }

    fn slot(&self, bank: BankId) -> Option<usize> {
        self.banks.binary_search(&bank).ok()
    }

    /// `true` if `bank` is managed by this table.
    pub fn manages(&self, bank: BankId) -> bool {
        self.slot(bank).is_some()
    }

    /// The predicted cycle at which `bank` becomes idle (0 if unknown
    /// or not managed).
    pub fn busy_until(&self, bank: BankId) -> Cycle {
        self.slot(bank).map(|i| self.until[i]).unwrap_or(0)
    }

    /// Records that a request was forwarded towards `bank` at `now`,
    /// expected to arrive after `arrival_latency` cycles (base latency
    /// plus congestion estimate) and to occupy the bank for
    /// `service` cycles. Returns the new busy horizon.
    ///
    /// Back-to-back requests queue behind each other at the bank, so
    /// service begins at the later of the predicted arrival and the
    /// current horizon.
    pub fn on_forward(
        &mut self,
        bank: BankId,
        now: Cycle,
        arrival_latency: Cycle,
        service: Cycle,
    ) -> Cycle {
        let Some(i) = self.slot(bank) else {
            return 0;
        };
        let start = self.until[i].max(now + arrival_latency);
        self.until[i] = start + service;
        self.until[i]
    }

    /// `true` if a request dispatched at `now` with the given expected
    /// network latency would arrive while the bank is still busy —
    /// i.e. the request should be delayed (Section 3.5: delay such
    /// that the packet "arrives at the busy bank immediately after the
    /// previous write request has been serviced").
    pub fn would_queue(&self, bank: BankId, now: Cycle, arrival_latency: Cycle) -> bool {
        self.would_queue_with_slack(bank, now, arrival_latency, 0)
    }

    /// [`BusyTable::would_queue`] with a release slack: the packet is
    /// let go `slack` cycles early so that allocation and switch
    /// contention on the way do not leave the bank idle (holding must
    /// stay work-conserving).
    pub fn would_queue_with_slack(
        &self,
        bank: BankId,
        now: Cycle,
        arrival_latency: Cycle,
        slack: Cycle,
    ) -> bool {
        now + arrival_latency + slack < self.busy_until(bank)
    }

    /// The cycle at which a held request should be released so that
    /// its arrival coincides with the bank becoming idle.
    pub fn release_at(&self, bank: BankId, arrival_latency: Cycle) -> Cycle {
        self.busy_until(bank).saturating_sub(arrival_latency)
    }

    /// How many managed banks are predicted busy at `now` (telemetry).
    pub fn busy_now(&self, now: Cycle) -> usize {
        self.until.iter().filter(|&&u| u > now).count()
    }

    /// Pushes `bank`'s busy horizon out to at least `until` (fault
    /// injection: a stuck-busy bank advertises a horizon far beyond
    /// anything its real service times would produce). Never shortens
    /// an existing prediction.
    pub fn force_busy(&mut self, bank: BankId, until: Cycle) {
        if let Some(i) = self.slot(bank) {
            self.until[i] = self.until[i].max(until);
        }
    }

    /// Clamps every horizon more than `max_ahead` cycles in the future
    /// down to `now + max_ahead`, returning how many were clamped.
    ///
    /// Defends the hold machinery against wedged predictions: a horizon
    /// can only grow without bound if forwards pile up faster than the
    /// bank drains — or if a fault (stuck-busy injection, a dropped ack
    /// inflating the congestion estimate) poisoned it. No legitimate
    /// single forward extends the horizon by more than arrival latency
    /// plus one service time, so a generous `max_ahead` never fires in
    /// a healthy run.
    pub fn expire_stale(&mut self, now: Cycle, max_ahead: Cycle) -> usize {
        let cap = now + max_ahead;
        let mut clamped = 0;
        for u in &mut self.until {
            if *u > cap {
                *u = cap;
                clamped += 1;
            }
        }
        clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(i: u16) -> BankId {
        BankId::new(i)
    }

    #[test]
    fn idle_bank_is_never_delayed() {
        let t = BusyTable::new([bank(1), bank(2)]);
        assert!(!t.would_queue(bank(1), 100, 4));
        assert_eq!(t.busy_until(bank(1)), 0);
    }

    #[test]
    fn forwarded_write_marks_bank_busy_for_its_service_time() {
        let mut t = BusyTable::new([bank(1)]);
        // Section 3.5: delay = 4 cycles + congestion + 33-cycle write.
        let until = t.on_forward(bank(1), 100, 4, 33);
        assert_eq!(until, 100 + 4 + 33);
        assert!(t.would_queue(bank(1), 101, 4));
        // A request dispatched so it arrives exactly at completion is
        // not delayed.
        assert!(!t.would_queue(bank(1), 133, 4));
        assert_eq!(t.release_at(bank(1), 4), 133);
    }

    #[test]
    fn queued_requests_extend_the_horizon() {
        let mut t = BusyTable::new([bank(1)]);
        t.on_forward(bank(1), 100, 4, 33); // until 137
        let until = t.on_forward(bank(1), 102, 4, 33); // queues behind
        assert_eq!(until, 137 + 33);
    }

    #[test]
    fn idle_gap_resets_the_start_time() {
        let mut t = BusyTable::new([bank(1)]);
        t.on_forward(bank(1), 100, 4, 3); // until 107
        let until = t.on_forward(bank(1), 200, 4, 33);
        assert_eq!(until, 200 + 4 + 33);
    }

    #[test]
    fn reads_occupy_briefly() {
        let mut t = BusyTable::new([bank(1)]);
        t.on_forward(bank(1), 100, 4, 3);
        assert!(t.would_queue(bank(1), 100, 4));
        assert!(!t.would_queue(bank(1), 103, 4));
    }

    #[test]
    fn slack_releases_early() {
        let mut t = BusyTable::new([bank(1)]);
        t.on_forward(bank(1), 100, 4, 33); // busy until 137
        assert!(t.would_queue(bank(1), 128, 4));
        assert!(!t.would_queue_with_slack(bank(1), 128, 4, 8));
    }

    #[test]
    fn busy_now_counts_banks_with_open_horizons() {
        let mut t = BusyTable::new([bank(1), bank(2), bank(3)]);
        assert_eq!(t.busy_now(0), 0);
        t.on_forward(bank(1), 100, 4, 33); // until 137
        t.on_forward(bank(3), 100, 4, 3); // until 107
        assert_eq!(t.busy_now(100), 2);
        assert_eq!(t.busy_now(107), 1, "horizon is exclusive at its end");
        assert_eq!(t.busy_now(137), 0);
    }

    #[test]
    fn force_busy_only_extends_the_horizon() {
        let mut t = BusyTable::new([bank(1)]);
        t.on_forward(bank(1), 100, 4, 33); // until 137
        t.force_busy(bank(1), 120);
        assert_eq!(t.busy_until(bank(1)), 137, "never shortens");
        t.force_busy(bank(1), 2_000);
        assert_eq!(t.busy_until(bank(1)), 2_000);
        t.force_busy(bank(9), 5_000); // unmanaged: ignored
        assert_eq!(t.busy_until(bank(9)), 0);
    }

    #[test]
    fn expire_stale_clamps_wedged_horizons_and_spares_healthy_ones() {
        // The dropped-ack recovery path: a stuck-busy injection (or an
        // ack that never came back) leaves a horizon thousands of
        // cycles out, and every request to that bank would be held at
        // its parent until the prediction drains. Expiry clamps the
        // wedged horizon so holds release, while a healthy prediction
        // within the window is untouched.
        let mut t = BusyTable::new([bank(1), bank(2), bank(3)]);
        t.on_forward(bank(1), 100, 4, 33); // until 137: healthy
        t.force_busy(bank(2), 9_000); // wedged
        t.force_busy(bank(3), 10_000); // wedged
        assert_eq!(t.expire_stale(100, 500), 2);
        assert_eq!(t.busy_until(bank(1)), 137);
        assert_eq!(t.busy_until(bank(2)), 600);
        assert_eq!(t.busy_until(bank(3)), 600);
        // Requests held on the wedged banks now release within the
        // window instead of waiting out the injected horizon.
        assert!(!t.would_queue(bank(2), 596, 4));
        // A second pass finds nothing left to clamp.
        assert_eq!(t.expire_stale(100, 500), 0);
    }

    #[test]
    fn unmanaged_banks_are_ignored() {
        let mut t = BusyTable::new([bank(1)]);
        assert!(!t.manages(bank(9)));
        assert_eq!(t.on_forward(bank(9), 100, 4, 33), 0);
        assert!(!t.would_queue(bank(9), 100, 4));
    }
}
