//! The private, write-back L1 data cache of each core (32 KB, 4-way,
//! 128 B blocks, 2-cycle hits, 32 MSHRs) with MESI states.

use crate::array::CacheArray;
use crate::mshr::{Allocation, MissKind, MshrFile, Waiter};
use crate::protocol::{L1In, L1Msg};
use snoc_common::config::MemConfig;
use snoc_common::ids::{BankId, CoreId};

/// MESI state of a present L1 line (absence is I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MesiState {
    /// Modified: exclusive and dirty.
    M,
    /// Exclusive: sole clean copy.
    E,
    /// Shared: read-only copy.
    #[default]
    S,
}

/// What happened to a core access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Completes after the L1 hit latency.
    Hit,
    /// A miss is outstanding; the token retires when data arrives.
    Miss,
    /// The MSHR file is full; retry next cycle.
    Blocked,
}

/// L1 statistics.
#[derive(Debug, Clone, Default)]
pub struct L1Stats {
    /// Load accesses.
    pub loads: u64,
    /// Store accesses.
    pub stores: u64,
    /// Load hits.
    pub load_hits: u64,
    /// Store hits.
    pub store_hits: u64,
    /// Primary misses sent to the L2 (GetS + GetM).
    pub misses_issued: u64,
    /// Dirty evictions (PutM writebacks to the home bank).
    pub writebacks: u64,
    /// Invalidations received.
    pub invalidations: u64,
    /// Forwards received.
    pub forwards: u64,
    /// Writes retired under a shared grant (merged-store timing
    /// approximation; see `DESIGN.md`).
    pub elided_upgrades: u64,
}

/// One private L1 cache.
#[derive(Debug)]
pub struct L1Cache {
    core: CoreId,
    array: CacheArray<MesiState>,
    mshrs: MshrFile,
    banks: usize,
    block_bits: u32,
    hit_latency: u64,
    /// Statistics.
    pub stats: L1Stats,
}

impl L1Cache {
    /// Creates the L1 for `core` with the Table 1 geometry from `cfg`,
    /// homed across `banks` L2 banks (block-interleaved).
    pub fn new(core: CoreId, cfg: &MemConfig, banks: usize) -> Self {
        Self {
            core,
            array: CacheArray::new(cfg.l1_bytes, cfg.l1_ways, cfg.block_bytes),
            mshrs: MshrFile::new(cfg.l1_mshrs),
            banks,
            block_bits: cfg.block_bytes.trailing_zeros(),
            hit_latency: cfg.l1_latency,
            stats: L1Stats::default(),
        }
    }

    /// This cache's core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The L1 hit latency in cycles.
    pub fn hit_latency(&self) -> u64 {
        self.hit_latency
    }

    /// Block-aligns an address.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr >> self.block_bits << self.block_bits
    }

    /// The home bank of a block (static block interleaving across the
    /// 64 banks).
    pub fn home_of(&self, addr: u64) -> BankId {
        BankId::new(((addr >> self.block_bits) % self.banks as u64) as u16)
    }

    /// Outstanding misses.
    pub fn outstanding(&self) -> usize {
        self.mshrs.len()
    }

    /// Processes a core load/store. Returns the outcome plus protocol
    /// messages to send (at most a GetS/GetM).
    pub fn access(&mut self, addr: u64, is_write: bool, token: u64) -> (AccessOutcome, Vec<L1Msg>) {
        let block = self.block_of(addr);
        if is_write {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }

        if let Some(state) = self.array.probe(block) {
            match (*state, is_write) {
                (_, false) => {
                    self.stats.load_hits += 1;
                    return (AccessOutcome::Hit, Vec::new());
                }
                (MesiState::M | MesiState::E, true) => {
                    *state = MesiState::M;
                    self.stats.store_hits += 1;
                    return (AccessOutcome::Hit, Vec::new());
                }
                (MesiState::S, true) => {
                    // Upgrade: GetM while keeping the S copy.
                }
            }
        }

        let kind = if is_write {
            MissKind::Write
        } else {
            MissKind::Read
        };
        match self.mshrs.allocate(block, Waiter { token, kind }) {
            Allocation::Primary => {
                self.stats.misses_issued += 1;
                let home = self.home_of(block);
                let msg = if is_write {
                    L1Msg::GetM { block, home }
                } else {
                    L1Msg::GetS { block, home }
                };
                (AccessOutcome::Miss, vec![msg])
            }
            Allocation::Secondary => (AccessOutcome::Miss, Vec::new()),
            Allocation::Full => (AccessOutcome::Blocked, Vec::new()),
        }
    }

    /// Handles a message from the home bank. Returns protocol replies
    /// and the core tokens whose memory operations completed.
    pub fn handle(&mut self, msg: L1In) -> (Vec<L1Msg>, Vec<u64>) {
        let mut out = Vec::new();
        let mut retired = Vec::new();
        match msg {
            L1In::Data { block, exclusive } => {
                let Some((waiters, wants_write)) = self.mshrs.complete(block) else {
                    return (out, retired); // spurious (e.g. raced with Inv)
                };
                let state = if wants_write && exclusive {
                    MesiState::M
                } else if wants_write {
                    // A store merged into a shared grant: retire it
                    // without a second upgrade round-trip (timing
                    // approximation).
                    self.stats.elided_upgrades += 1;
                    MesiState::S
                } else if exclusive {
                    MesiState::E
                } else {
                    MesiState::S
                };
                if let Some(existing) = self.array.peek_mut(block) {
                    // Upgrade completion: the S copy becomes M.
                    if wants_write && exclusive {
                        *existing = MesiState::M;
                    }
                } else if let Some(ev) = self.array.insert(block, state) {
                    if ev.meta == MesiState::M {
                        self.stats.writebacks += 1;
                        out.push(L1Msg::PutM {
                            block: ev.addr,
                            home: self.home_of(ev.addr),
                        });
                    }
                }
                retired.extend(waiters.iter().map(|w| w.token));
            }
            L1In::Inv { block, home } => {
                self.stats.invalidations += 1;
                self.array.invalidate(block);
                out.push(L1Msg::InvAck { block, home });
            }
            L1In::FwdGetS { block, home, txn } => {
                self.stats.forwards += 1;
                match self.array.peek_mut(block) {
                    Some(state @ (MesiState::M | MesiState::E)) => {
                        *state = MesiState::S;
                        out.push(L1Msg::FwdData { block, home, txn });
                    }
                    _ => out.push(L1Msg::FwdMiss { block, home, txn }),
                }
            }
            L1In::FwdGetM { block, home, txn } => {
                self.stats.forwards += 1;
                match self.array.invalidate(block) {
                    Some(MesiState::M | MesiState::E) => {
                        out.push(L1Msg::FwdData { block, home, txn })
                    }
                    _ => out.push(L1Msg::FwdMiss { block, home, txn }),
                }
            }
        }
        (out, retired)
    }

    /// The MESI state of a block, if present (tests/instrumentation).
    pub fn state_of(&self, addr: u64) -> Option<MesiState> {
        self.array.peek(self.block_of(addr)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(CoreId::new(0), &MemConfig::default(), 64)
    }

    #[test]
    fn cold_load_misses_then_hits() {
        let mut c = l1();
        let (o, msgs) = c.access(0x1000, false, 1);
        assert_eq!(o, AccessOutcome::Miss);
        assert!(matches!(msgs[0], L1Msg::GetS { block: 0x1000, .. }));
        let (_, retired) = c.handle(L1In::Data {
            block: 0x1000,
            exclusive: false,
        });
        assert_eq!(retired, vec![1]);
        assert_eq!(c.state_of(0x1000), Some(MesiState::S));
        let (o, msgs) = c.access(0x1040, false, 2); // same block
        assert_eq!(o, AccessOutcome::Hit);
        assert!(msgs.is_empty());
    }

    #[test]
    fn store_to_shared_issues_upgrade() {
        let mut c = l1();
        c.access(0x1000, false, 1);
        c.handle(L1In::Data {
            block: 0x1000,
            exclusive: false,
        });
        let (o, msgs) = c.access(0x1000, true, 2);
        assert_eq!(o, AccessOutcome::Miss);
        assert!(matches!(msgs[0], L1Msg::GetM { block: 0x1000, .. }));
        let (_, retired) = c.handle(L1In::Data {
            block: 0x1000,
            exclusive: true,
        });
        assert_eq!(retired, vec![2]);
        assert_eq!(c.state_of(0x1000), Some(MesiState::M));
    }

    #[test]
    fn exclusive_grant_installs_e_and_silently_upgrades() {
        let mut c = l1();
        c.access(0x2000, false, 1);
        c.handle(L1In::Data {
            block: 0x2000,
            exclusive: true,
        });
        assert_eq!(c.state_of(0x2000), Some(MesiState::E));
        let (o, msgs) = c.access(0x2000, true, 2);
        assert_eq!(o, AccessOutcome::Hit, "E->M is silent");
        assert!(msgs.is_empty());
        assert_eq!(c.state_of(0x2000), Some(MesiState::M));
    }

    #[test]
    fn dirty_eviction_emits_putm() {
        let mut c = l1();
        // Fill one set (64 sets: stride 64*128 = 8192) with M lines.
        let stride = 64 * 128;
        for i in 0..4u64 {
            let addr = i * stride;
            c.access(addr, true, i);
            c.handle(L1In::Data {
                block: addr,
                exclusive: true,
            });
        }
        c.access(4 * stride, true, 9);
        let (msgs, _) = c.handle(L1In::Data {
            block: 4 * stride,
            exclusive: true,
        });
        assert_eq!(msgs.len(), 1, "LRU M line written back");
        assert!(matches!(msgs[0], L1Msg::PutM { block: 0, .. }));
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn secondary_misses_merge() {
        let mut c = l1();
        let (_, m1) = c.access(0x3000, false, 1);
        let (o2, m2) = c.access(0x3040, false, 2);
        assert_eq!(m1.len(), 1);
        assert_eq!(o2, AccessOutcome::Miss);
        assert!(m2.is_empty(), "secondary miss issues nothing");
        let (_, retired) = c.handle(L1In::Data {
            block: 0x3000,
            exclusive: false,
        });
        assert_eq!(retired, vec![1, 2]);
        assert_eq!(c.stats.misses_issued, 1);
    }

    #[test]
    fn mshr_full_blocks() {
        let cfg = MemConfig {
            l1_mshrs: 1,
            ..MemConfig::default()
        };
        let mut c = L1Cache::new(CoreId::new(0), &cfg, 64);
        c.access(0x1000, false, 1);
        let (o, _) = c.access(0x2000, false, 2);
        assert_eq!(o, AccessOutcome::Blocked);
    }

    #[test]
    fn invalidation_drops_line_and_acks() {
        let mut c = l1();
        c.access(0x1000, false, 1);
        c.handle(L1In::Data {
            block: 0x1000,
            exclusive: false,
        });
        let (msgs, _) = c.handle(L1In::Inv {
            block: 0x1000,
            home: BankId::new(32),
        });
        assert!(matches!(msgs[0], L1Msg::InvAck { block: 0x1000, .. }));
        assert_eq!(c.state_of(0x1000), None);
        assert_eq!(c.stats.invalidations, 1);
    }

    #[test]
    fn fwd_gets_downgrades_and_supplies_data() {
        let mut c = l1();
        c.access(0x1000, true, 1);
        c.handle(L1In::Data {
            block: 0x1000,
            exclusive: true,
        });
        let (msgs, _) = c.handle(L1In::FwdGetS {
            block: 0x1000,
            home: BankId::new(32),
            txn: 7,
        });
        assert!(matches!(
            msgs[0],
            L1Msg::FwdData {
                block: 0x1000,
                txn: 7,
                ..
            }
        ));
        assert_eq!(c.state_of(0x1000), Some(MesiState::S));
    }

    #[test]
    fn fwd_getm_invalidates_owner() {
        let mut c = l1();
        c.access(0x1000, true, 1);
        c.handle(L1In::Data {
            block: 0x1000,
            exclusive: true,
        });
        let (msgs, _) = c.handle(L1In::FwdGetM {
            block: 0x1000,
            home: BankId::new(32),
            txn: 8,
        });
        assert!(matches!(
            msgs[0],
            L1Msg::FwdData {
                block: 0x1000,
                txn: 8,
                ..
            }
        ));
        assert_eq!(c.state_of(0x1000), None);
    }

    #[test]
    fn fwd_to_absent_line_reports_miss() {
        let mut c = l1();
        let (msgs, _) = c.handle(L1In::FwdGetS {
            block: 0x9000,
            home: BankId::new(32),
            txn: 9,
        });
        assert!(matches!(
            msgs[0],
            L1Msg::FwdMiss {
                block: 0x9000,
                txn: 9,
                ..
            }
        ));
    }

    #[test]
    fn home_mapping_interleaves_blocks() {
        let c = l1();
        assert_eq!(c.home_of(0), BankId::new(0));
        assert_eq!(c.home_of(128), BankId::new(1));
        assert_eq!(c.home_of(64 * 128), BankId::new(0));
        assert_eq!(
            c.home_of(130),
            BankId::new(1),
            "offsets map with their block"
        );
    }
}
