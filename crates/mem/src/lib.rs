//! Memory-hierarchy substrate for the STT-RAM NoC reproduction.
//!
//! Everything between the core and DRAM: set-associative tag arrays
//! with LRU ([`array`]), MSHRs ([`mshr`]), the private MESI L1s
//! ([`l1`]), shared L2 home banks with directory coherence
//! ([`l2bank`]), the bank service-timing controller with the BUFF-20
//! write buffer ([`bank_ctrl`], [`write_buffer`]), SRAM/STT-RAM
//! technology parameters ([`tech`]) and the memory controllers
//! ([`mem_ctrl`]).
//!
//! # Example
//!
//! ```
//! use snoc_mem::bank_ctrl::{BankController, BankJob, BankOp};
//!
//! // An STT-RAM bank: 3-cycle reads, 33-cycle writes.
//! let mut bank = BankController::new(3, 33, None);
//! bank.enqueue(BankJob { op: BankOp::Write, token: 1, addr: 0, arrived: 0 }, 0);
//! bank.enqueue(BankJob { op: BankOp::Read, token: 2, addr: 128, arrived: 1 }, 1);
//! let (done, _) = bank.run_until_idle(0, 100);
//! assert_eq!(done[0].finished, 3); // writer released at latch speed
//! assert_eq!(done[1].started, 33); // the read queued behind the write
//! ```

pub mod array;
pub mod bank_ctrl;
pub mod directory;
pub mod l1;
pub mod l2bank;
pub mod mem_ctrl;
pub mod mshr;
pub mod protocol;
pub mod replacement;
pub mod tech;
pub mod write_buffer;

pub use bank_ctrl::{BankController, BankJob, BankOp};
pub use l1::L1Cache;
pub use l2bank::{L2Bank, TagMode};
pub use mem_ctrl::MemoryController;
pub use tech::TechParams;
